package zeiot

import (
	"context"
	"fmt"

	"zeiot/internal/cnn"
	"zeiot/internal/microdeep"
	"zeiot/internal/modality"
	"zeiot/internal/rng"
	"zeiot/internal/wsn"
)

// loungeNet builds the discomfort-detection CNN over the 17×25 cell field.
func loungeNet(stream *rng.Stream) *cnn.Network {
	return cnn.NewNetwork([]int{1, 17, 25},
		cnn.NewConv2D(1, 4, 3, 3, 1, 1, stream.Split("c")),
		cnn.NewReLU(),
		cnn.NewMaxPool2D(3, 3),
		cnn.NewFlatten(),
		cnn.NewDense(4*5*8, 16, stream.Split("d1")),
		cnn.NewReLU(),
		cnn.NewDense(16, 2, stream.Split("d2")),
	)
}

// loungeWSN deploys 50 sensor nodes over the lounge as a 5×10 grid (the
// paper's campaign used 50 temperature sensors across 25×17 cells).
func loungeWSN() *wsn.Network {
	return wsn.NewGrid(5, 10, 1)
}

// e2Samples bounds the default run for benchmark-friendly runtimes while
// keeping the paper's data shape; RunConfig.SampleScale moves it (the full
// paper campaign is 2,961).
const e2Samples = 1200

// e2Repeats is the default accuracy-averaging repeat count: single runs of
// an 8-epoch SGD swing by a few points, more than the effect size.
const e2Repeats = 3

// RunE2Lounge regenerates the §IV.C lounge experiment: discomfort
// detection over the 25×17-cell field, MicroDeep (balanced assignment +
// local weight updates on 50 nodes) against the standard centralized CNN.
// The paper reports ~95% vs 97% accuracy with MicroDeep's peak per-node
// traffic at 13% of the centralized version.
func RunE2Lounge(ctx context.Context, rc *RunConfig) (*Result, error) {
	h, err := beginRun(ctx, rc)
	if err != nil {
		return nil, err
	}
	seed := h.cfg.Seed
	root := rng.New(seed)
	// The lounge modality at experiment grade (0.75 °C sensor noise keeps
	// accuracies off the ceiling). The campaign stream is a fresh
	// root-seeded stream — the historical GenerateLounge(cfg.Seed)
	// derivation.
	mod := modality.NewLounge()
	mod.Cfg.Samples = h.cfg.scaled(e2Samples)
	cfg := mod.Cfg
	samples, err := mod.Campaign(rng.New(seed))
	if err != nil {
		return nil, err
	}
	cut := len(samples) * 3 / 4
	train, test := samples[:cut], samples[cut:]
	h.mark(StageDataset)

	repeats := h.cfg.repeatsOr(e2Repeats)
	var stdNet *cnn.Network // last repeat's trained standard net, for optional int8 eval
	accStd, err := h.trainAveraged(root, "std", repeats, func(sStd *rng.Stream) (float64, error) {
		standard := loungeNet(sStd)
		standard.SetBatchKernel(h.cfg.BatchKernel)
		standard.SetRecorder(h.cfg.Recorder, "standard_", test)
		standard.FitParallel(train, 8, 16, h.cfg.workers(), cnn.NewSGD(0.02, 0.9), sStd.Split("fit"))
		h.mark(StageTrain)
		stdNet = standard
		acc := standard.Evaluate(test)
		h.mark(StageEval)
		return acc, nil
	})
	if err != nil {
		return nil, err
	}

	// MicroDeep: same architecture distributed over 50 nodes with the
	// balanced heuristic and local weight updates.
	w := loungeWSN()
	var md *microdeep.Model
	accMD, err := h.trainAveraged(root, "microdeep", repeats, func(sMD *rng.Stream) (float64, error) {
		mdNet := loungeNet(sMD)
		m, err := microdeep.Build(mdNet, w, microdeep.StrategyBalanced)
		if err != nil {
			return 0, err
		}
		m.EnableLocalUpdate()
		m.SetBatchKernel(h.cfg.BatchKernel) // no-op with local updates (replica convs)
		m.SetRecorder(h.cfg.Recorder, "microdeep_", test)
		m.FitParallel(train, 12, 16, h.cfg.workers(), cnn.NewSGD(0.01, 0.9), sMD.Split("fit"))
		h.mark(StageTrain)
		md = m
		acc := m.Evaluate(test)
		h.mark(StageEval)
		return acc, nil
	})
	if err != nil {
		return nil, err
	}

	// Peak-traffic comparison: the sensing pipeline runs a forward pass
	// per sample, so MicroDeep's per-sample forward traffic is compared
	// against shipping every sensor reading to a single sink (the
	// "standard version" deployment whose peak traffic §IV.C says
	// MicroDeep cuts to 13%). Training traffic (forward+backward) is
	// reported separately.
	w.ResetCounters()
	if _, err := microdeep.ChargeForward(md.Graph, md.Assign, w); err != nil {
		return nil, err
	}
	mdFwd := microdeep.Report(w)
	mdCost, err := md.CostPerSample(false)
	if err != nil {
		return nil, err
	}
	w.ResetCounters()
	if _, err := microdeep.ChargeCentralized(md.Graph, w, w.Live()[len(w.Live())/2]); err != nil {
		return nil, err
	}
	centralCost := microdeep.Report(w)
	peakRatio := float64(mdFwd.Max) / float64(centralCost.Max)

	// Ablations the design section calls out: assignment strategy and
	// local vs synchronized updates, on the same architecture.
	coordModel, err := microdeep.Build(loungeNet(root.Split("coord")), loungeWSN(), microdeep.StrategyCoordinate)
	if err != nil {
		return nil, err
	}
	coordCost, err := coordModel.CostPerSample(false)
	if err != nil {
		return nil, err
	}
	syncCost, err := md.CostPerSample(true)
	if err != nil {
		return nil, err
	}
	h.observeWSN("wsn_", w)
	h.observePlanCache("microdeep_", md.Graph)
	h.mark(StageCharge)

	res := &Result{
		ID:         "e2",
		Title:      "Lounge discomfort detection: accuracy and peak traffic",
		PaperClaim: "MicroDeep ~95% vs standard CNN 97%; peak traffic 13% of centralized",
		Header:     []string{"setting", "accuracy", "max cost/sample", "peak vs centralized"},
		Rows: [][]string{
			{"standard CNN (ship to sink)", pct(accStd), fi(centralCost.Max), "100%"},
			{"MicroDeep sensing (forward only)", pct(accMD), fi(mdFwd.Max), pct(peakRatio)},
			{"MicroDeep training (fwd+bwd)", "-", fi(mdCost.Max), pct(float64(mdCost.Max) / float64(centralCost.Max))},
			{"ablation: coordinate assignment", "-", fi(coordCost.Max), pct(float64(coordCost.Max) / float64(centralCost.Max))},
			{"ablation: synchronized weights", "-", fi(syncCost.Max), pct(float64(syncCost.Max) / float64(centralCost.Max))},
		},
		Summary: map[string]float64{
			"acc_standard":   accStd,
			"acc_microdeep":  accMD,
			"peak_ratio":     peakRatio,
			"max_cost_md":    float64(mdCost.Max),
			"max_fwd_md":     float64(mdFwd.Max),
			"max_cost_sink":  float64(centralCost.Max),
			"max_cost_sync":  float64(syncCost.Max),
			"max_cost_coord": float64(coordCost.Max),
		},
		Notes: fmt.Sprintf("%d of the paper's 2,961 samples (runtime bound), 50 nodes over 17×25 cells; replica divergence %.4f",
			cfg.Samples, md.ReplicaDivergence()),
	}

	// Optional int8 accuracy row for the standard CNN: fixed-point inference
	// is what a sensing deployment would actually run on the nodes. Strictly
	// additive — default summaries keep their bytes.
	if h.cfg.Quantize {
		qacc, agree, err := h.quantEval("standard_", stdNet, train, test)
		if err != nil {
			return nil, err
		}
		h.mark(StageEval)
		res.Rows = append(res.Rows,
			[]string{"standard CNN, int8 inference", pct(qacc), "", ""})
		res.Summary["acc_standard_quant"] = qacc
		res.Summary["quant_agreement"] = agree
	}
	return h.finish(res), nil
}
