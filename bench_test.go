package zeiot_test

import (
	"bytes"
	"context"
	"strconv"
	"testing"
	"time"

	"zeiot"
	"zeiot/internal/cnn"
	"zeiot/internal/csi"
	"zeiot/internal/dataset"
	"zeiot/internal/geom"
	"zeiot/internal/mac"
	"zeiot/internal/microdeep"
	"zeiot/internal/modality"
	"zeiot/internal/rng"
	"zeiot/internal/tensor"
	"zeiot/internal/wsn"
)

// benchExperiment runs one paper-artifact experiment per iteration and
// publishes its headline numbers as benchmark metrics, so a single
// `go test -bench=.` regenerates (and records) every table and figure.
// The metric-publishing run happens before the timer starts so ReportMetric
// bookkeeping never pollutes ns/op. Per-stage wall times from the warm-up
// run are published with a _stage_sec suffix so cmd/benchjson can carry
// them into the per-PR snapshot.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	exp, err := zeiot.FindExperiment(id)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	res, err := exp.Run(ctx, nil) // warm-up run, also supplies the metrics
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Run(ctx, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, k := range res.SummaryKeys() {
		b.ReportMetric(res.Summary[k], k)
	}
	for _, stage := range res.Timings.Stages() {
		b.ReportMetric(res.Timings[stage].Seconds(), stage+"_stage_sec")
	}
}

// One benchmark per paper artifact (see DESIGN.md's experiment index).

func BenchmarkE1FallCommCost(b *testing.B)    { benchExperiment(b, "e1") }
func BenchmarkE2LoungeAccuracy(b *testing.B)  { benchExperiment(b, "e2") }
func BenchmarkE3TrainCar(b *testing.B)        { benchExperiment(b, "e3") }
func BenchmarkE4RoomCount(b *testing.B)       { benchExperiment(b, "e4") }
func BenchmarkE5CSILocalization(b *testing.B) { benchExperiment(b, "e5") }
func BenchmarkE6BackscatterMAC(b *testing.B)  { benchExperiment(b, "e6") }
func BenchmarkE7LinkEnergy(b *testing.B)      { benchExperiment(b, "e7") }
func BenchmarkE8Resilience(b *testing.B)      { benchExperiment(b, "e8") }
func BenchmarkE9Sociogram(b *testing.B)       { benchExperiment(b, "e9") }
func BenchmarkE10RFIDTracking(b *testing.B)   { benchExperiment(b, "e10") }

// --- substrate micro-benchmarks ---

func benchNet(seed uint64) (*cnn.Network, *tensor.Tensor) {
	s := rng.New(seed)
	net := cnn.NewNetwork([]int{1, 17, 25},
		cnn.NewConv2D(1, 4, 3, 3, 1, 1, s.Split("c")),
		cnn.NewReLU(),
		cnn.NewMaxPool2D(3, 3),
		cnn.NewFlatten(),
		cnn.NewDense(4*5*8, 16, s.Split("d1")),
		cnn.NewReLU(),
		cnn.NewDense(16, 2, s.Split("d2")),
	)
	in := tensor.New(1, 17, 25)
	d := in.Data()
	for i := range d {
		d[i] = s.NormMeanStd(0, 1)
	}
	return net, in
}

func BenchmarkCNNForward(b *testing.B) {
	net, in := benchNet(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(in)
	}
}

func BenchmarkCNNTrainStep(b *testing.B) {
	net, in := benchNet(2)
	opt := cnn.NewSGD(0.01, 0.9)
	samples := []cnn.Sample{{Input: in, Label: 1}}
	perm := []int{0}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.TrainEpoch(samples, perm, 1, opt)
	}
}

func BenchmarkDistributedForward(b *testing.B) {
	net, in := benchNet(3)
	g, err := microdeep.BuildGraph(net)
	if err != nil {
		b.Fatal(err)
	}
	ex := microdeep.NewExecutor(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.Forward(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAssignBalanced(b *testing.B) {
	net, _ := benchNet(4)
	g, err := microdeep.BuildGraph(net)
	if err != nil {
		b.Fatal(err)
	}
	w := wsn.NewGrid(5, 10, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := microdeep.AssignBalanced(g, w, microdeep.DefaultBalanceOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChargeForward(b *testing.B) {
	net, _ := benchNet(5)
	g, err := microdeep.BuildGraph(net)
	if err != nil {
		b.Fatal(err)
	}
	w := wsn.NewGrid(5, 10, 1)
	a, err := microdeep.AssignBalanced(g, w, microdeep.DefaultBalanceOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.ResetCounters()
		if _, err := microdeep.ChargeForward(g, a, w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicroDeepTrainStep times one local-update training step through
// the replica-aware path (per-position kernel tables, first-layer gradient
// skip, replica SGD + gossip bookkeeping).
func BenchmarkMicroDeepTrainStep(b *testing.B) {
	net, in := benchNet(6)
	w := wsn.NewGrid(5, 10, 1)
	m, err := microdeep.Build(net, w, microdeep.StrategyBalanced)
	if err != nil {
		b.Fatal(err)
	}
	m.EnableLocalUpdate()
	opt := cnn.NewSGD(0.01, 0.9)
	samples := []cnn.Sample{{Input: in, Label: 1}}
	perm := []int{0}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.TrainEpoch(samples, perm, 1, opt)
	}
}

// BenchmarkPlan times Plan with a warm cache: a key computation (assignment
// hash), one map hit, and the defensive copy of the transfer list.
func BenchmarkPlan(b *testing.B) {
	net, _ := benchNet(7)
	g, err := microdeep.BuildGraph(net)
	if err != nil {
		b.Fatal(err)
	}
	w := wsn.NewGrid(5, 10, 1)
	a, err := microdeep.AssignBalanced(g, w, microdeep.DefaultBalanceOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := microdeep.Plan(g, a, w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCostPerSample times the full per-sample cost accounting the
// experiments loop over: forward + backward charge replaying the cached
// plan, plus the report snapshot.
func BenchmarkCostPerSample(b *testing.B) {
	net, _ := benchNet(8)
	w := wsn.NewGrid(5, 10, 1)
	m, err := microdeep.Build(net, w, microdeep.StrategyBalanced)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.CostPerSample(false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMACSimSecond(b *testing.B) {
	cfg := mac.DefaultConfig()
	cfg.Seed = 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mac.Run(cfg, time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCSIFeatureExtraction(b *testing.B) {
	pattern := csi.PaperPatterns()[0]
	room := csi.DefaultRoom(pattern)
	pos := csi.SevenPositions()[0]
	stream := rng.New(1)
	snapshot := room.Snapshot(pos, stream)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := room.Feedback.Features(snapshot); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWSNRouting(b *testing.B) {
	w := wsn.NewGrid(10, 10, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Send(0, 99, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// benchTrainSamples builds a deterministic labelled sample set matching
// benchNet's input shape.
func benchTrainSamples(n int) []cnn.Sample {
	s := rng.New(77)
	out := make([]cnn.Sample, n)
	for i := range out {
		in := tensor.New(1, 17, 25)
		d := in.Data()
		for j := range d {
			d[j] = s.NormMeanStd(0, 1)
		}
		out[i] = cnn.Sample{Input: in, Label: i % 2}
	}
	return out
}

// BenchmarkCNNTrainEpochBatched compares one training epoch through the
// batched im2col/GEMM engine against the per-sample path (the kernel1
// sub-benchmark) on the same net, data, and batch size. Results are
// bit-identical across all variants; only samples_per_sec moves.
func BenchmarkCNNTrainEpochBatched(b *testing.B) {
	samples := benchTrainSamples(64)
	perm := make([]int, len(samples))
	for i := range perm {
		perm[i] = i
	}
	for _, kernel := range []int{1, 4, 8, 16} {
		b.Run("kernel"+strconv.Itoa(kernel), func(b *testing.B) {
			net, _ := benchNet(6)
			opt := cnn.NewSGD(0.01, 0.9)
			run := func() {
				if kernel <= 1 {
					net.TrainEpoch(samples, perm, 16, opt)
				} else {
					net.TrainEpochBatched(samples, perm, 16, kernel, opt)
				}
			}
			run() // warm scratch buffers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				run()
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)*float64(len(samples))/b.Elapsed().Seconds(), "samples_per_sec")
		})
	}
}

// BenchmarkQuantForward compares int8 fixed-point inference against the
// float forward pass on the same trained net.
func BenchmarkQuantForward(b *testing.B) {
	net, in := benchNet(7)
	qn, err := cnn.QuantizeNetwork(net, []cnn.Sample{{Input: in, Label: 0}})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("float", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			net.Forward(in)
		}
	})
	b.Run("int8", func(b *testing.B) {
		qn.Forward(in) // warm (build-time buffers only; proves no lazy alloc)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			qn.Forward(in)
		}
	})
}

// BenchmarkE16NodesPerSec runs the crowd-scale scenario end to end at three
// field sizes and reports node-steps simulated per wall-clock second
// (nodes × steps × iterations / elapsed) — the PR 7 scale metric. The 100k
// sub-benchmark is the acceptance case: one full structural build, churn
// repaired shard by shard.
func BenchmarkE16NodesPerSec(b *testing.B) {
	for _, nodes := range []int{1_000, 10_000, 100_000} {
		b.Run("nodes"+strconv.Itoa(nodes), func(b *testing.B) {
			cfg := &zeiot.RunConfig{Seed: 1, Nodes: nodes}
			ctx := context.Background()
			res, err := zeiot.RunE16Crowd(ctx, cfg) // warm-up, supplies steps
			if err != nil {
				b.Fatal(err)
			}
			steps := res.Summary["steps"]
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := zeiot.RunE16Crowd(ctx, cfg); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)*float64(nodes)*steps/b.Elapsed().Seconds(), "nodes_per_sec")
			b.ReportMetric(res.Summary["full_rebuilds"], "full_rebuilds")
			b.ReportMetric(res.Summary["shard_rebuilds"], "shard_rebuilds")
		})
	}
}

// BenchmarkWSNLinked measures the Linked predicate at high node degree on a
// dense all-within-range cluster: the binary sub-benchmark is the PR 7
// sorted-adjacency binary search, scan replays the pre-PR7 linear walk over
// the neighbour list for the before/after record.
func BenchmarkWSNLinked(b *testing.B) {
	const n = 256
	s := rng.New(9)
	positions := make([]geom.Point, n)
	for i := range positions {
		positions[i] = geom.Point{X: s.Float64(), Y: s.Float64()}
	}
	w := wsn.New(positions, 2) // every pair in range: degree n-1
	w.Hops(0, 1)               // build tables outside the timed region
	b.Run("binary", func(b *testing.B) {
		b.ReportAllocs()
		hits := 0
		for i := 0; i < b.N; i++ {
			if w.Linked(i%n, (i*7+3)%n) {
				hits++
			}
		}
		_ = hits
	})
	b.Run("scan", func(b *testing.B) {
		b.ReportAllocs()
		hits := 0
		for i := 0; i < b.N; i++ {
			u, v := i%n, (i*7+3)%n
			for _, nb := range w.Neighbors(u) {
				if nb == v {
					hits++
					break
				}
			}
		}
		_ = hits
	})
}

func BenchmarkE11BatteryFree(b *testing.B)   { benchExperiment(b, "e11") }
func BenchmarkE12SurveySensing(b *testing.B) { benchExperiment(b, "e12") }
func BenchmarkE13AthleteHAR(b *testing.B)    { benchExperiment(b, "e13") }
func BenchmarkE14Intrusion(b *testing.B)     { benchExperiment(b, "e14") }
func BenchmarkE15Vitals(b *testing.B)        { benchExperiment(b, "e15") }

func BenchmarkE17Intermittent(b *testing.B) { benchExperiment(b, "e17") }
func BenchmarkE18CrossModal(b *testing.B)   { benchExperiment(b, "e18") }

// BenchmarkModalityGenerate measures raw sample throughput of every
// registered modality adapter through the unified Source interface — the
// PR 9 per-modality samples/sec record. Generation is pure compute over a
// named rng stream, so this is the dataset-side cost of a matrix row.
func BenchmarkModalityGenerate(b *testing.B) {
	const n = 32
	for _, name := range modality.Names() {
		b.Run(name, func(b *testing.B) {
			src, err := modality.New(name)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := src.Generate(n, rng.New(1).Split("bench")); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)*n/b.Elapsed().Seconds(), "samples_per_sec")
		})
	}
}

// BenchmarkTrainerCheckpoint measures the intermittent runtime's insurance
// premium: one mid-training Save plus a full ResumeTrainer round-trip of
// the e2 lounge net, with the checkpoint size as a metric.
func BenchmarkTrainerCheckpoint(b *testing.B) {
	samples := benchLoungeSamples(b, 96)
	tr := cnn.NewTrainer(benchNet2(1), cnn.NewSGD(0.02, 0.9), rng.New(3).Split("fit"), samples, 8, 16, 1)
	tr.Step(2)
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := tr.Save(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := cnn.ResumeTrainer(bytes.NewReader(buf.Bytes()), samples, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(buf.Len()), "checkpoint_bytes")
}

// benchLoungeSamples is loungeSamples for benchmarks (testing.B, not .T).
func benchLoungeSamples(b *testing.B, n int) []cnn.Sample {
	b.Helper()
	cfg := dataset.DefaultLoungeConfig()
	cfg.Seed = 7
	cfg.Samples = n
	samples, err := dataset.GenerateLounge(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return samples
}
