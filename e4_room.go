package zeiot

import (
	"fmt"

	"zeiot/internal/congestion"
	"zeiot/internal/rng"
)

// RunE4RoomCount regenerates the §IV.B room-congestion result of ref.
// [66]: people counting from the inter-node and surrounding RSSI of an
// already-deployed 802.15.4 WSN. The paper reports ~79% accuracy with
// errors up to two people.
func RunE4RoomCount(seed uint64) (*Result, error) {
	root := rng.New(seed)
	cfg := congestion.DefaultRoomConfig()
	est, err := congestion.TrainRoomEstimator(cfg, 60, root.Split("train"))
	if err != nil {
		return nil, err
	}
	full := congestion.EvaluateRoom(est, 25, root.Split("eval"))

	// Ablation 1: single-sweep features (no synchronized averaging) show
	// why Choco-style synchronized repeated measurement matters.
	cfgOne := cfg
	cfgOne.Sweeps = 1
	estOne, err := congestion.TrainRoomEstimator(cfgOne, 60, root.Split("train1"))
	if err != nil {
		return nil, err
	}
	one := congestion.EvaluateRoom(estOne, 25, root.Split("eval1"))

	// Ablation 2: the paper's two separate estimators — people from
	// inter-node RSSI, devices from surrounding RSSI.
	cfgLinks := cfg
	cfgLinks.Mode = congestion.RoomLinksOnly
	estLinks, err := congestion.TrainRoomEstimator(cfgLinks, 60, root.Split("trainL"))
	if err != nil {
		return nil, err
	}
	links := congestion.EvaluateRoom(estLinks, 25, root.Split("evalL"))
	cfgSur := cfg
	cfgSur.Mode = congestion.RoomSurroundingOnly
	estSur, err := congestion.TrainRoomEstimator(cfgSur, 60, root.Split("trainS"))
	if err != nil {
		return nil, err
	}
	sur := congestion.EvaluateRoom(estSur, 25, root.Split("evalS"))

	res := &Result{
		ID:         "e4",
		Title:      "Room people counting from synchronized RSSI",
		PaperClaim: "~79% accuracy, errors up to two people",
		Header:     []string{"setting", "exact acc", "within ±2", "mean |err|", "max err"},
		Rows: [][]string{
			{fmt.Sprintf("fused, synchronized (%d sweeps)", cfg.Sweeps), pct(full.Exact), pct(full.Within2), f3(full.MeanAbs), fi(full.MaxError)},
			{"people from inter-node RSSI [66]", pct(links.Exact), pct(links.Within2), f3(links.MeanAbs), fi(links.MaxError)},
			{"devices from surrounding RSSI [66]", pct(sur.Exact), pct(sur.Within2), f3(sur.MeanAbs), fi(sur.MaxError)},
			{"ablation: single sweep", pct(one.Exact), pct(one.Within2), f3(one.MeanAbs), fi(one.MaxError)},
		},
		Summary: map[string]float64{
			"exact_acc":       full.Exact,
			"within2":         full.Within2,
			"mean_abs_err":    full.MeanAbs,
			"max_err":         float64(full.MaxError),
			"exact_acc_one":   one.Exact,
			"exact_acc_links": links.Exact,
			"exact_acc_sur":   sur.Exact,
		},
		Notes: fmt.Sprintf("%d×%d node grid, 0..%d people, 25 trials per count", cfg.Rows, cfg.Cols, cfg.MaxPeople),
	}
	return res, nil
}
