package zeiot

import (
	"context"
	"fmt"

	"zeiot/internal/congestion"
	"zeiot/internal/rng"
)

// RunE4RoomCount regenerates the §IV.B room-congestion result of ref.
// [66]: people counting from the inter-node and surrounding RSSI of an
// already-deployed 802.15.4 WSN. The paper reports ~79% accuracy with
// errors up to two people.
func RunE4RoomCount(ctx context.Context, rc *RunConfig) (*Result, error) {
	h, err := beginRun(ctx, rc)
	if err != nil {
		return nil, err
	}
	root := rng.New(h.cfg.Seed)
	trainTrials, evalTrials := h.cfg.scaled(60), h.cfg.scaled(25)
	cfg := congestion.DefaultRoomConfig()
	est, err := congestion.TrainRoomEstimator(cfg, trainTrials, root.Split("train"))
	if err != nil {
		return nil, err
	}
	h.mark(StageTrain)
	full := congestion.EvaluateRoom(est, evalTrials, root.Split("eval"))
	h.mark(StageEval)

	// Ablation 1: single-sweep features (no synchronized averaging) show
	// why Choco-style synchronized repeated measurement matters.
	cfgOne := cfg
	cfgOne.Sweeps = 1
	estOne, err := congestion.TrainRoomEstimator(cfgOne, trainTrials, root.Split("train1"))
	if err != nil {
		return nil, err
	}
	h.mark(StageTrain)
	one := congestion.EvaluateRoom(estOne, evalTrials, root.Split("eval1"))
	h.mark(StageEval)

	// Ablation 2: the paper's two separate estimators — people from
	// inter-node RSSI, devices from surrounding RSSI.
	cfgLinks := cfg
	cfgLinks.Mode = congestion.RoomLinksOnly
	estLinks, err := congestion.TrainRoomEstimator(cfgLinks, trainTrials, root.Split("trainL"))
	if err != nil {
		return nil, err
	}
	links := congestion.EvaluateRoom(estLinks, evalTrials, root.Split("evalL"))
	cfgSur := cfg
	cfgSur.Mode = congestion.RoomSurroundingOnly
	estSur, err := congestion.TrainRoomEstimator(cfgSur, trainTrials, root.Split("trainS"))
	if err != nil {
		return nil, err
	}
	sur := congestion.EvaluateRoom(estSur, evalTrials, root.Split("evalS"))
	h.mark(StageEval)

	res := &Result{
		ID:         "e4",
		Title:      "Room people counting from synchronized RSSI",
		PaperClaim: "~79% accuracy, errors up to two people",
		Header:     []string{"setting", "exact acc", "within ±2", "mean |err|", "max err"},
		Rows: [][]string{
			{fmt.Sprintf("fused, synchronized (%d sweeps)", cfg.Sweeps), pct(full.Exact), pct(full.Within2), f3(full.MeanAbs), fi(full.MaxError)},
			{"people from inter-node RSSI [66]", pct(links.Exact), pct(links.Within2), f3(links.MeanAbs), fi(links.MaxError)},
			{"devices from surrounding RSSI [66]", pct(sur.Exact), pct(sur.Within2), f3(sur.MeanAbs), fi(sur.MaxError)},
			{"ablation: single sweep", pct(one.Exact), pct(one.Within2), f3(one.MeanAbs), fi(one.MaxError)},
		},
		Summary: map[string]float64{
			"exact_acc":       full.Exact,
			"within2":         full.Within2,
			"mean_abs_err":    full.MeanAbs,
			"max_err":         float64(full.MaxError),
			"exact_acc_one":   one.Exact,
			"exact_acc_links": links.Exact,
			"exact_acc_sur":   sur.Exact,
		},
		Notes: fmt.Sprintf("%d×%d node grid, 0..%d people, %d trials per count", cfg.Rows, cfg.Cols, cfg.MaxPeople, evalTrials),
	}
	return h.finish(res), nil
}
