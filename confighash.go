package zeiot

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"strconv"
	"strings"
)

// configKeyVersion tags the canonical serialization format. Bump it whenever
// a RunConfig field is added or a normalization rule changes, so stale cache
// entries keyed under the old format can never be served for a config the
// old format could not describe.
const configKeyVersion = "v1"

// CanonicalConfig renders (experiment, cfg) in the canonical text form that
// ConfigKey hashes: one `field=value` line per knob, in fixed field order,
// with semantically identical configs rendering to identical bytes:
//
//   - SampleScale 0 renders as 1 (beginRun's normalization),
//   - Harvest.PowerScale 0 renders as 1 and Profile "" as "mixed"
//     (HarvestConfig documents both pairs as equivalent),
//   - Modalities render as a sorted, deduplicated set (the normalization
//     beginRun applies before any experiment reads them),
//   - Recorder is excluded: observation never changes any result byte, so
//     two configs differing only in their recorder are the same run.
//
// A nil cfg renders as DefaultRunConfig(). The form is stable across
// processes — no addresses, no map iteration order — which is what makes it
// usable as a result-cache key for cmd/zeiotd.
func CanonicalConfig(experiment string, cfg *RunConfig) string {
	if cfg == nil {
		cfg = DefaultRunConfig()
	}
	scale := cfg.SampleScale
	if scale == 0 {
		scale = 1
	}
	hscale := cfg.Harvest.PowerScale
	if hscale == 0 {
		hscale = 1
	}
	hprof := cfg.Harvest.Profile
	if hprof == "" {
		hprof = "mixed"
	}
	mods := canonicalModalities(cfg.Modalities)

	var b strings.Builder
	put := func(field, value string) {
		b.WriteString(field)
		b.WriteByte('=')
		b.WriteString(value)
		b.WriteByte('\n')
	}
	put("version", configKeyVersion)
	put("experiment", experiment)
	put("seed", strconv.FormatUint(cfg.Seed, 10))
	put("trainworkers", strconv.Itoa(cfg.TrainWorkers))
	put("loss.enabled", strconv.FormatBool(cfg.Loss.Enabled))
	put("loss.dropprob", canonFloat(cfg.Loss.DropProb))
	put("loss.burst", strconv.FormatBool(cfg.Loss.Burst))
	put("loss.maxretries", strconv.Itoa(cfg.Loss.MaxRetries))
	put("samplescale", canonFloat(scale))
	put("repeats", strconv.Itoa(cfg.Repeats))
	put("batchkernel", strconv.Itoa(cfg.BatchKernel))
	put("nodes", strconv.Itoa(cfg.Nodes))
	put("quantize", strconv.FormatBool(cfg.Quantize))
	put("harvest.powerscale", canonFloat(hscale))
	put("harvest.profile", hprof)
	put("checkpoint.path", strconv.Quote(cfg.Checkpoint.Path))
	put("checkpoint.killafter", strconv.Itoa(cfg.Checkpoint.KillAfterBatches))
	put("checkpoint.resume", strconv.FormatBool(cfg.Checkpoint.Resume))
	put("modalities", strings.Join(mods, ","))
	return b.String()
}

// ConfigKey returns the canonical cache key for running experiment under
// cfg: the hex SHA-256 of CanonicalConfig. Two configs share a key exactly
// when every knob an experiment can read is semantically identical, so a
// result cache keyed by it may legally serve either run the other's bytes.
// Invalid configs have no meaningful key and are rejected.
func ConfigKey(experiment string, cfg *RunConfig) (string, error) {
	if _, err := FindExperiment(experiment); err != nil {
		return "", err
	}
	if cfg != nil {
		if err := cfg.Validate(); err != nil {
			return "", err
		}
	}
	sum := sha256.Sum256([]byte(CanonicalConfig(experiment, cfg)))
	return hex.EncodeToString(sum[:]), nil
}

// canonicalModalities returns the sorted, deduplicated form of a modality
// list — the set semantics RunConfig.Modalities documents. A nil or empty
// list stays empty (every registered modality).
func canonicalModalities(mods []string) []string {
	if len(mods) == 0 {
		return nil
	}
	out := append([]string(nil), mods...)
	sort.Strings(out)
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[w-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}

// canonFloat renders a float in the shortest decimal form that round-trips,
// normalizing negative zero, so equal values always serialize identically.
func canonFloat(v float64) string {
	if v == 0 {
		v = 0 // collapse -0 onto +0
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
