package zeiot

import (
	"math"

	"zeiot/internal/rng"
	"zeiot/internal/wsn"
)

// LossConfig enables the lossy-link fault-injection dimension of the
// experiments (RunConfig.Loss, zeiotbench -loss). With Enabled false — the
// default — every experiment runs the fault-free code path and reports
// byte-identical summaries; with it set, E8 gains a loss-rate sweep
// (accuracy and comm cost vs drop rate, with and without retries) and E11
// charges the retransmission energy of the reliable transport on the
// backscatter budget.
type LossConfig struct {
	Enabled bool
	// DropProb is the per-link-attempt drop probability used by the
	// single-rate consumers (E11); E8 sweeps its own canonical rates.
	DropProb float64
	// Burst selects Gilbert-Elliott burst loss (correlated fades) instead
	// of independent per-attempt drops, at the same stationary loss rate.
	Burst bool
	// MaxRetries bounds the reliable transport's per-hop retransmissions;
	// 0 disables retries.
	MaxRetries int
}

// DefaultLossConfig returns the config zeiotbench -loss starts from: 10%
// drops, independent losses, up to three retransmissions per hop.
func DefaultLossConfig() LossConfig {
	return LossConfig{DropProb: 0.1, MaxRetries: 3}
}

// faultSeed derives the loss-stream seed for one sweep point: the
// experiment seed xor the rate's bits spread by the golden-ratio multiply,
// finalized through one SplitMix64 avalanche round. The finalizer is the
// fix for two defects of the raw mix `seed ^ (bits(rate) * golden)`: at
// rate 0 the xor was the identity, so the fault model shared the
// experiment's own base stream, and the multiply alone mixes too weakly to
// guarantee unrelated streams for nearby rates. Mix64 is a bijection, so
// distinct rates still can never collide with each other at a fixed seed.
func faultSeed(seed uint64, rate float64) uint64 {
	return rng.Mix64(seed ^ (math.Float64bits(rate) * 0x9e3779b97f4a7c15))
}

// faultModelFor builds the deterministic link fault model for an
// experiment: the loss-stream seed mixes the experiment seed with the drop
// rate (see faultSeed), so every sweep point draws from an independent,
// reproducible stream and never perturbs the experiment's own rng streams.
func faultModelFor(seed uint64, rate float64, burst bool) *wsn.LinkFaultModel {
	cfg := wsn.FaultConfig{Seed: faultSeed(seed, rate)}
	if burst {
		cfg.Burst = wsn.GilbertElliottFor(rate)
	} else {
		cfg.DropProb = rate
	}
	return wsn.NewLinkFaultModel(cfg)
}

// retryPolicyFor returns the default retry policy bounded at maxRetries.
func retryPolicyFor(maxRetries int) wsn.RetryPolicy {
	rp := wsn.DefaultRetryPolicy()
	rp.MaxRetries = maxRetries
	return rp
}
