package zeiot_test

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"zeiot"
	"zeiot/internal/obs"
)

// TestMetricsGoldenE1 pins the two observability contracts at once on e1
// seed 1 (the experiment with the densest instrumentation):
//
//  1. Attaching a recorder changes nothing: the Result, with Metrics and
//     Timings stripped, still matches the checked-in golden byte for byte.
//  2. The metrics themselves are deterministic: two independent runs export
//     byte-identical Prometheus text once walltime_-prefixed entries are
//     stripped (the in-process version of the ci.sh -metrics-out diff).
func TestMetricsGoldenE1(t *testing.T) {
	if testing.Short() {
		t.Skip("trains the fall-detection CNNs twice")
	}
	want, err := os.ReadFile(filepath.Join("testdata", "e1_seed1.golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	e, err := zeiot.FindExperiment("e1")
	if err != nil {
		t.Fatal(err)
	}

	runOnce := func() (resultJSON, prom []byte) {
		cfg := zeiot.DefaultRunConfig()
		reg := obs.NewRegistry()
		cfg.Recorder = reg
		r, err := e.Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if r.Metrics == nil {
			t.Fatal("Result.Metrics not attached despite a snapshotting recorder")
		}
		if len(r.Metrics.Series["optimal_train_loss"]) == 0 {
			t.Error("metrics missing the optimal_train_loss training curve")
		}
		if _, ok := r.Metrics.Gauges["wsn_route_cache_hits"]; !ok {
			t.Error("metrics missing wsn_route_cache_hits")
		}
		r.Timings = nil
		r.Metrics = nil
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		enc.SetIndent("", "  ")
		if err := enc.Encode([]*zeiot.Result{r}); err != nil {
			t.Fatal(err)
		}
		var pb bytes.Buffer
		if err := reg.Snapshot().Deterministic().WritePrometheus(&pb, "zeiot_e1_"); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), pb.Bytes()
	}

	json1, prom1 := runOnce()
	json2, prom2 := runOnce()

	if !bytes.Equal(json1, want) {
		t.Error("e1 Result with a recorder attached diverged from the recorder-free golden")
	}
	if !bytes.Equal(json2, want) {
		t.Error("second instrumented e1 run diverged from the golden")
	}
	if !bytes.Equal(prom1, prom2) {
		t.Errorf("deterministic metrics differ across identical runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", prom1, prom2)
	}
	if len(prom1) == 0 {
		t.Error("deterministic Prometheus export is empty")
	}
}
