// Package zeiot reproduces "Context Recognition of Humans and Objects by
// Distributed Zero-Energy IoT Devices" (Higashino, Uchiyama, Saruwatari,
// Yamaguchi, Watanabe — ICDCS 2019).
//
// The library implements the paper's core contribution — MicroDeep, a
// convolutional neural network distributed over a wireless sensor network
// (internal/microdeep) — and every substrate the paper's systems need:
// a from-scratch CNN (internal/cnn), a multi-hop WSN simulator with
// per-node communication accounting (internal/wsn), RF propagation and
// ambient-backscatter link models (internal/radio, internal/backscatter),
// the backscatter MAC coexistence protocol (internal/mac), the 802.11ac
// compressed-CSI learning pipeline (internal/csi), RSSI congestion
// estimators (internal/congestion), RFID phase tracking (internal/rfid),
// zero-energy sensor device models (internal/sensors), and the sociogram
// pipeline (internal/sociogram).
//
// This root package hosts the experiment registry: one runnable experiment
// per table/figure/claim in the paper (see DESIGN.md's experiment index and
// EXPERIMENTS.md for paper-vs-measured numbers). Run them with
//
//	go run ./cmd/zeiotbench            # all experiments
//	go run ./cmd/zeiotbench -e e1      # one experiment
//	go test -bench=. -benchmem         # the benchmark harness
package zeiot
