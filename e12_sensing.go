package zeiot

import (
	"context"
	"fmt"

	"zeiot/internal/csi"
	"zeiot/internal/motion"
	"zeiot/internal/rng"
	"zeiot/internal/sensors"
	"zeiot/internal/wordfi"
)

// RunE12SurveySensing regenerates the §II.B wireless-sensing results the
// paper's argument leans on: Motion-Fi's repetitive-motion counting from
// backscatter RSSI with frequency-shifted tags (ref [37]), Word-Fi's
// handwriting recognition over tracked tag trajectories (ref [38]),
// Printed Wi-Fi's battery-free flow metering (ref [36]), and Electronic
// Frog Eye's PEM-based crowd estimation from CSI variation (ref [29]).
func RunE12SurveySensing(ctx context.Context, rc *RunConfig) (*Result, error) {
	h, err := beginRun(ctx, rc)
	if err != nil {
		return nil, err
	}
	root := rng.New(h.cfg.Seed)
	res := &Result{
		ID:         "e12",
		Title:      "Survey sensing: Motion-Fi rep counting and PEM crowd counting",
		PaperClaim: "§II.B: backscatter counts repetitive motions; CSI PEM estimates crowd size",
		Header:     []string{"task", "truth", "estimate", "detail"},
		Summary:    map[string]float64{},
	}

	// Motion-Fi: single-tag counting across exercise types.
	exact, total := 0, 0
	motionStream := root.Split("motion")
	for _, tc := range []struct {
		name   string
		reps   int
		period float64
	}{
		{"squats", 15, 2.0},
		{"steps", 40, 0.9},
		{"arm raises", 25, 1.5},
	} {
		w := motion.DefaultWorkout()
		w.Reps = tc.reps
		w.RepPeriodSec = tc.period
		sig, err := motion.Generate(w, motionStream.Split(tc.name))
		if err != nil {
			return nil, err
		}
		got := motion.CountReps(sig, w.SampleHz)
		res.Rows = append(res.Rows, []string{"motion: " + tc.name, fi(tc.reps), fi(got), fmt.Sprintf("period %.1fs", tc.period)})
		if got == tc.reps {
			exact++
		}
		total++
		res.Summary["reps_"+sanitizeKey(tc.name)] = float64(got)
	}

	// Motion-Fi: two concurrent exercisers separated by frequency shift.
	wa := motion.DefaultWorkout()
	wa.Reps = 12
	wa.SampleHz = 200
	wa.NoiseStd = 0.2
	wb := wa
	wb.Reps = 18
	wb.RepPeriodSec = 1.4
	composite, _, err := motion.Composite([]motion.TagChannel{
		{ShiftHz: 20, Workout: wa},
		{ShiftHz: 45, Workout: wb},
	}, 0.3, motionStream.Split("multi"))
	if err != nil {
		return nil, err
	}
	ca := motion.CountReps(motion.Demultiplex(composite, 20, wa.SampleHz), wa.SampleHz)
	cb := motion.CountReps(motion.Demultiplex(composite, 45, wb.SampleHz), wb.SampleHz)
	res.Rows = append(res.Rows,
		[]string{"motion: concurrent tag A", fi(wa.Reps), fi(ca), "20 Hz shift"},
		[]string{"motion: concurrent tag B", fi(wb.Reps), fi(cb), "45 Hz shift"},
	)
	res.Summary["multi_a"] = float64(ca)
	res.Summary["multi_b"] = float64(cb)
	h.mark(StageEval)

	// Word-Fi: handwriting letters from tracked backscatter trajectories.
	wfCfg := wordfi.DefaultConfig()
	wfStream := root.Split("wordfi")
	recognizer, err := wordfi.Train(wfCfg, h.cfg.scaled(8), wfStream.Split("train"))
	if err != nil {
		return nil, err
	}
	h.mark(StageTrain)
	wfAcc, err := recognizer.Evaluate(h.cfg.scaled(5), wfStream.Split("eval"))
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, []string{
		"word-fi: letter accuracy", fmt.Sprintf("%d letters", len(wordfi.Letters)), pct(wfAcc), "tracked pen tag",
	})
	res.Summary["wordfi_acc"] = wfAcc

	// Printed Wi-Fi: the battery-free flow meter counts volume via
	// impedance toggles.
	meter, err := sensors.NewFlowMeter(0.5, 2)
	if err != nil {
		return nil, err
	}
	flowStream := root.Split("flow")
	flow := make([]float64, h.cfg.scaled(2000))
	trueVolume := 0.0
	for i := range flow {
		flow[i] = 0.004 + 0.003*flowStream.Float64()
		trueVolume += flow[i]
	}
	measured := meter.VolumeFromToggles(meter.CountToggles(flow))
	flowErr := measured/trueVolume - 1
	res.Rows = append(res.Rows, []string{
		"printed-wifi: metered volume",
		fmt.Sprintf("%.1f L", trueVolume),
		fmt.Sprintf("%.1f L", measured),
		fmt.Sprintf("%+.1f%%", 100*flowErr),
	})
	res.Summary["flow_rel_err"] = flowErr
	h.mark(StageEval)

	// Electronic Frog Eye: PEM crowd estimation. Single-link PEM saturates
	// once several people move, so the reliable deliverable is the
	// three-level congestion class (empty / sparse / busy).
	crowdStream := root.Split("crowd")
	cfg := csi.DefaultCrowdConfig()
	counter, err := csi.CalibrateCrowd(cfg, 10, h.cfg.scaled(8), crowdStream.Split("cal"))
	if err != nil {
		return nil, err
	}
	h.mark(StageTrain)
	correct, trials := 0, 0
	repeats := h.cfg.repeatsOr(8)
	for n := 0; n <= 10; n += 2 {
		hits := 0
		// The per-count repeat loop rides the shared averaging helper; the
		// split names keep the historical eval-<count>-<round> derivation.
		if _, err := h.averageOver(repeats, func(r int) (float64, error) {
			got := counter.CountLevel(n, 3, crowdStream.Split(fmt.Sprintf("eval-%d-%d", n, r)))
			trials++
			if got != csi.LevelForCount(n) {
				return 0, nil
			}
			hits++
			correct++
			return 1, nil
		}); err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("crowd: %d people", n), csi.LevelForCount(n).String(),
			fmt.Sprintf("level hit %d/%d", hits, repeats), "PEM inversion",
		})
	}
	crowdAcc := float64(correct) / float64(trials)
	res.Summary["crowd_level_acc"] = crowdAcc
	res.Summary["motion_exact"] = float64(exact) / float64(total)
	res.Rows = append(res.Rows, []string{"crowd: overall level accuracy", "", pct(crowdAcc), ""})
	res.Notes = "Motion-Fi: 50–200 Hz RSSI, autocorrelation counting; Word-Fi: 4-reader phase tracking; Printed Wi-Fi: 0.25 L/toggle gear; Frog Eye: 52-subcarrier PEM"
	h.mark(StageEval)
	return h.finish(res), nil
}
