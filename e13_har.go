package zeiot

import (
	"context"
	"fmt"

	"zeiot/internal/cnn"
	"zeiot/internal/har"
	"zeiot/internal/ml"
	"zeiot/internal/modality"
	"zeiot/internal/rng"
)

// RunE13AthleteHAR implements use case (ii) of §III.C — "grasping
// activities of athletes" — on zero-energy hardware: a worn bank of spring
// accelerometers with staggered resonances backscatters 1-bit chatter
// states, and a classifier over the per-window chatter rates recognizes
// the activity. The paper sketches this qualitatively ("several types of
// ultra-low power accelerometers using environmental power"); we build and
// score it.
func RunE13AthleteHAR(ctx context.Context, rc *RunConfig) (*Result, error) {
	h, err := beginRun(ctx, rc)
	if err != nil {
		return nil, err
	}
	seed := h.cfg.Seed
	root := rng.New(seed)
	// The HAR modality adapter; its campaign path reproduces the historical
	// har.GenerateDataset feature matrices byte-for-byte.
	mod := modality.NewHAR()
	cfg := mod.Cfg
	evalWindows := h.cfg.scaled(12)
	recognizer, err := har.Train(cfg, h.cfg.scaled(16), root.Split("train"))
	if err != nil {
		return nil, err
	}
	h.mark(StageTrain)
	cm, err := recognizer.Evaluate(evalWindows, root.Split("eval"))
	if err != nil {
		return nil, err
	}
	h.mark(StageEval)
	res := &Result{
		ID:         "e13",
		Title:      "Athlete activity recognition on zero-energy resonator bank",
		PaperClaim: "use case (ii), qualitative — implemented with spring-accelerometer chatter features",
		Header:     []string{"activity", "recall", "F1"},
		Summary: map[string]float64{
			"accuracy": cm.Accuracy(),
			"macro_f1": cm.MacroF1(),
		},
		Notes: fmt.Sprintf("%d-resonator bank (%v Hz), %d s windows, k-NN on chatter rates; %d test windows per class",
			len(cfg.BankHz), cfg.BankHz, int(cfg.WindowSec), evalWindows),
	}
	for a := 0; a < har.NumActivities(); a++ {
		_, recall := cm.PrecisionRecall(a)
		res.Rows = append(res.Rows, []string{har.Activity(a).String(), pct(recall), f3(cm.F1(a))})
		res.Summary["recall_"+har.Activity(a).String()] = recall
	}
	res.Rows = append(res.Rows,
		[]string{"overall accuracy", pct(cm.Accuracy()), ""},
		[]string{"macro F1", f3(cm.MacroF1()), ""},
	)

	// Ablation: classifier family over the same chatter-rate features.
	abl, err := mod.Campaign(h.cfg.scaled(20), root.Split("ablation"))
	if err != nil {
		return nil, err
	}
	h.mark(StageDataset)
	for _, clf := range []struct {
		name    string
		trainer ml.Trainer
	}{
		{"knn(k=5)", ml.KNN{K: 5}},
		{"decision-tree", ml.Tree{MaxDepth: 8}},
		{"random-forest", ml.Forest{Trees: 30, MaxDepth: 8, Seed: seed}},
		{"gaussian-nb", ml.GaussianNB{}},
	} {
		if err := h.ctx.Err(); err != nil {
			return nil, err
		}
		acm, err := ml.CrossValidate(clf.trainer, abl, 5, root.Split("cv-"+clf.name))
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []string{"ablation " + clf.name, pct(acm.Accuracy()), f3(acm.MacroF1())})
		res.Summary["abl_"+sanitizeKey(clf.name)] = acm.Accuracy()
	}
	h.mark(StageEval)

	// Optional neural ablation with int8 deployment accuracy: a small dense
	// CNN over the same chatter-rate features, scored in float and in
	// fixed-point int8 — the arithmetic the worn zero-energy node would run.
	// Everything here draws from fresh named rng splits strictly after the
	// rows above, so default-config outputs keep their bytes.
	if h.cfg.Quantize {
		qtrainD, err := mod.Campaign(h.cfg.scaled(24), root.Split("quant-train"))
		if err != nil {
			return nil, err
		}
		qtestD, err := mod.Campaign(h.cfg.scaled(10), root.Split("quant-test"))
		if err != nil {
			return nil, err
		}
		qtrain, qtest := modality.FromDataset(qtrainD), modality.FromDataset(qtestD)
		nf := len(qtrainD.X[0])
		sQ := root.Split("quant-net")
		net := cnn.NewNetwork([]int{nf},
			cnn.NewDense(nf, 24, sQ.Split("d1")),
			cnn.NewReLU(),
			cnn.NewDense(24, har.NumActivities(), sQ.Split("d2")),
		)
		net.SetBatchKernel(h.cfg.BatchKernel)
		net.Fit(qtrain, 30, 16, cnn.NewSGD(0.05, 0.9), sQ.Split("fit"))
		h.mark(StageTrain)
		floatAcc := net.Evaluate(qtest)
		qacc, agree, err := h.quantEval("har_", net, qtrain, qtest)
		if err != nil {
			return nil, err
		}
		h.mark(StageEval)
		res.Rows = append(res.Rows,
			[]string{"cnn (dense), float", pct(floatAcc), ""},
			[]string{"cnn (dense), int8", pct(qacc), f3(agree)},
		)
		res.Summary["acc_cnn_float"] = floatAcc
		res.Summary["acc_cnn_quant"] = qacc
		res.Summary["quant_agreement"] = agree
	}
	return h.finish(res), nil
}
