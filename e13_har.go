package zeiot

import (
	"fmt"

	"zeiot/internal/har"
	"zeiot/internal/ml"
	"zeiot/internal/rng"
)

// RunE13AthleteHAR implements use case (ii) of §III.C — "grasping
// activities of athletes" — on zero-energy hardware: a worn bank of spring
// accelerometers with staggered resonances backscatters 1-bit chatter
// states, and a classifier over the per-window chatter rates recognizes
// the activity. The paper sketches this qualitatively ("several types of
// ultra-low power accelerometers using environmental power"); we build and
// score it.
func RunE13AthleteHAR(seed uint64) (*Result, error) {
	root := rng.New(seed)
	cfg := har.DefaultConfig()
	recognizer, err := har.Train(cfg, 16, root.Split("train"))
	if err != nil {
		return nil, err
	}
	cm, err := recognizer.Evaluate(12, root.Split("eval"))
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:         "e13",
		Title:      "Athlete activity recognition on zero-energy resonator bank",
		PaperClaim: "use case (ii), qualitative — implemented with spring-accelerometer chatter features",
		Header:     []string{"activity", "recall", "F1"},
		Summary: map[string]float64{
			"accuracy": cm.Accuracy(),
			"macro_f1": cm.MacroF1(),
		},
		Notes: fmt.Sprintf("%d-resonator bank (%v Hz), %d s windows, k-NN on chatter rates; 12 test windows per class",
			len(cfg.BankHz), cfg.BankHz, int(cfg.WindowSec)),
	}
	for a := 0; a < har.NumActivities(); a++ {
		_, recall := cm.PrecisionRecall(a)
		res.Rows = append(res.Rows, []string{har.Activity(a).String(), pct(recall), f3(cm.F1(a))})
		res.Summary["recall_"+har.Activity(a).String()] = recall
	}
	res.Rows = append(res.Rows,
		[]string{"overall accuracy", pct(cm.Accuracy()), ""},
		[]string{"macro F1", f3(cm.MacroF1()), ""},
	)

	// Ablation: classifier family over the same chatter-rate features.
	abl, err := har.GenerateDataset(cfg, 20, root.Split("ablation"))
	if err != nil {
		return nil, err
	}
	for _, clf := range []struct {
		name    string
		trainer ml.Trainer
	}{
		{"knn(k=5)", ml.KNN{K: 5}},
		{"decision-tree", ml.Tree{MaxDepth: 8}},
		{"random-forest", ml.Forest{Trees: 30, MaxDepth: 8, Seed: seed}},
		{"gaussian-nb", ml.GaussianNB{}},
	} {
		acm, err := ml.CrossValidate(clf.trainer, abl, 5, root.Split("cv-"+clf.name))
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []string{"ablation " + clf.name, pct(acm.Accuracy()), f3(acm.MacroF1())})
		res.Summary["abl_"+sanitizeKey(clf.name)] = acm.Accuracy()
	}
	return res, nil
}
