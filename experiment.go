package zeiot

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"zeiot/internal/obs"
)

// Canonical stage names for Result.Timings. Experiments mark the stages
// they actually have; StageTotal is always present.
const (
	StageDataset = "dataset"
	StageTrain   = "train"
	StageEval    = "eval"
	StageCharge  = "charge"
	StageTotal   = "total"
)

// Timings records per-stage wall time for one run, keyed by stage name
// (StageDataset, StageTrain, StageEval, StageCharge, plus StageTotal).
// Durations marshal as nanoseconds. Wall time is the one value in a Result
// that is not deterministic, so tools diffing results byte-for-byte strip
// it first (cmd/zeiotbench omits it unless -timings is given).
type Timings map[string]time.Duration

// Stages returns the recorded stage names in canonical order (dataset,
// train, eval, charge, total) followed by any extras sorted by name.
func (t Timings) Stages() []string {
	canonical := []string{StageDataset, StageTrain, StageEval, StageCharge, StageTotal}
	inCanon := make(map[string]bool, len(canonical))
	out := make([]string, 0, len(t))
	for _, s := range canonical {
		inCanon[s] = true
		if _, ok := t[s]; ok {
			out = append(out, s)
		}
	}
	extras := make([]string, 0)
	for s := range t {
		if !inCanon[s] {
			extras = append(extras, s)
		}
	}
	sort.Strings(extras)
	return append(out, extras...)
}

// Result is the regenerated form of one paper table or figure.
type Result struct {
	// ID is the experiment identifier (e1..e15); Title a short name.
	ID    string `json:"id"`
	Title string `json:"title"`
	// PaperClaim quotes the number(s) the paper reports for this artifact.
	PaperClaim string `json:"paper_claim,omitempty"`
	// Header and Rows form the regenerated table.
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	// Summary exposes the headline numbers for programmatic checks
	// (benchmarks assert on these keys).
	Summary map[string]float64 `json:"summary"`
	// Timings is the per-stage wall-time instrumentation every run
	// records about itself. Unlike every other field it is not
	// deterministic.
	Timings Timings `json:"timings,omitempty"`
	// Metrics is the observability export: when RunConfig.Recorder is a
	// snapshotting recorder (obs.NewRegistry), the harness attaches its
	// state here at the end of the run. Metrics named with the
	// obs.WallTimePrefix convention are the only nondeterministic entries;
	// everything else is byte-stable across identical runs. Nil whenever
	// observability is disabled, so default-config output is unchanged.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
	// Notes records deviations and tuning decisions.
	Notes string `json:"notes,omitempty"`
}

// SummaryKeys returns the summary keys in sorted order.
func (r *Result) SummaryKeys() []string {
	keys := make([]string, 0, len(r.Summary))
	for k := range r.Summary {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteTo renders the result as a text table.
func (r *Result) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", strings.ToUpper(r.ID), r.Title)
	if r.PaperClaim != "" {
		fmt.Fprintf(&b, "paper: %s\n", r.PaperClaim)
	}
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			// Rows may be ragged (e.g. annotation rows wider than Header):
			// cells beyond the last header column render unpadded.
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteString("\n")
	}
	writeRow(r.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteString("\n")
	for _, row := range r.Rows {
		writeRow(row)
	}
	if r.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", r.Notes)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// Experiment regenerates one paper artifact.
type Experiment struct {
	ID, Title string
	// Paper cites what the artifact is in the paper.
	Paper string
	// Run executes the experiment under the given per-run config. A nil
	// cfg means DefaultRunConfig(); the config is cloned on entry, never
	// mutated, so one config value may back many concurrent runs. The
	// context is honoured at stage boundaries and between training
	// repeats.
	Run func(ctx context.Context, cfg *RunConfig) (*Result, error)
}

// Experiments returns the registry in index order.
func Experiments() []Experiment {
	return []Experiment{
		{ID: "e1", Title: "Fall-detection CNN: optimal vs feasible+heuristic (Fig. 10)", Paper: "accuracy 91.875% vs 89.73%, max comm cost 360 vs 210 (-40%)", Run: RunE1FallCommCost},
		{ID: "e2", Title: "Lounge discomfort: MicroDeep vs standard CNN (§IV.C)", Paper: "95% vs 97% accuracy; peak traffic 13% of centralized", Run: RunE2Lounge},
		{ID: "e3", Title: "Train-car positioning and congestion (§IV.B, ref [65])", Paper: "83% car-level positioning; congestion F-measure 0.82", Run: RunE3TrainCar},
		{ID: "e4", Title: "Room people counting from 802.15.4 RSSI (§IV.B, ref [66])", Paper: "~79% accuracy, errors up to two people", Run: RunE4RoomCount},
		{ID: "e5", Title: "CSI localization over 6 patterns (§IV.B, ref [8])", Paper: "~96% for 7 positions when walking with divergent antennas", Run: RunE5CSILocalization},
		{ID: "e6", Title: "Backscatter MAC coexistence (§IV.A, ref [64])", Paper: "scheduled MAC preserves WLAN performance and backscatter delivery; errors rise without traffic/dummies", Run: RunE6BackscatterMAC},
		{ID: "e7", Title: "Zero-energy link budget and energy per bit (§I)", Paper: "backscatter ≈ 1/10,000 the power of conventional radio (~10 µW)", Run: RunE7LinkEnergy},
		{ID: "e8", Title: "Resilience to broken devices (§V challenge)", Paper: "stated as an open challenge — implemented and measured here", Run: RunE8Resilience},
		{ID: "e9", Title: "Kindergarten sociogram (§III.C use case iv)", Paper: "sketched qualitatively — implemented and scored against ground truth", Run: RunE9Sociogram},
		{ID: "e10", Title: "RFID tag-array tracking and direction (§III.A, refs [60][61])", Paper: "skeleton tracking and movement-direction estimation, qualitative", Run: RunE10RFIDTracking},
		{ID: "e11", Title: "Battery-free MicroDeep on backscatter (§IV.C future work)", Paper: "stated as ongoing future work — implemented and measured here", Run: RunE11BatteryFree},
		{ID: "e12", Title: "Survey sensing: Motion-Fi and Frog-Eye PEM (§II.B, refs [37][29])", Paper: "repetitive-motion counting and PEM crowd estimation, cited results", Run: RunE12SurveySensing},
		{ID: "e13", Title: "Athlete activity recognition on a zero-energy resonator bank (§III.C use case ii)", Paper: "qualitative use case — implemented and scored here", Run: RunE13AthleteHAR},
		{ID: "e14", Title: "Animal intrusion detection with CNN over range-time maps (§III.C use case iii, ref [46])", Paper: "qualitative use case — implemented and scored here", Run: RunE14Intrusion},
		{ID: "e15", Title: "RF-ECG vital rates from a chest tag array (§III.C use case i, ref [58])", Paper: "qualitative use case — implemented and scored here", Run: RunE15Vitals},
		{ID: "e16", Title: "Crowd-scale backscatter field on the sharded routing core (§I/§III.C vision)", Paper: "10⁵-device deployments stated as the target scale — simulated here with churn and mobile tags", Run: RunE16Crowd},
		{ID: "e17", Title: "Intermittent-power runtime: harvest-gated training and brownout inference (§I zero-energy vision)", Paper: "devices compute on harvested µW budgets — implemented as capacitor-gated training with checkpointed, bit-identical resume", Run: RunE17Intermittent},
		{ID: "e18", Title: "Cross-modal benchmark matrix over the unified modality registry (§III.C one-substrate vision)", Paper: "one zero-energy substrate recognizes many contexts — measured as an accuracy/latency/energy matrix here", Run: RunE18CrossModal},
	}
}

// FindExperiment returns the experiment with the given id.
func FindExperiment(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("zeiot: unknown experiment %q", id)
}

func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func fi(v int) string      { return fmt.Sprintf("%d", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
