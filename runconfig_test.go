package zeiot

import (
	"context"
	"strings"
	"testing"
)

func TestRunConfigValidate(t *testing.T) {
	cases := []struct {
		name    string
		cfg     RunConfig
		wantErr string // substring; "" means valid
	}{
		{"zero value", RunConfig{}, ""},
		{"default", *DefaultRunConfig(), ""},
		{"negative workers", RunConfig{TrainWorkers: -1}, "TrainWorkers"},
		{"negative scale", RunConfig{SampleScale: -0.5}, "SampleScale"},
		{"negative repeats", RunConfig{Repeats: -2}, "Repeats"},
		{"negative batch kernel", RunConfig{BatchKernel: -4}, "BatchKernel"},
		{"batch kernel", RunConfig{BatchKernel: 8}, ""},
		{"quantize", RunConfig{Quantize: true}, ""},
		{"batch kernel with quantize", RunConfig{BatchKernel: 16, Quantize: true}, ""},
		{"drop prob above one", RunConfig{Loss: LossConfig{Enabled: true, DropProb: 1.5}}, "DropProb"},
		{"drop prob negative", RunConfig{Loss: LossConfig{Enabled: true, DropProb: -0.1}}, "DropProb"},
		{"negative retries", RunConfig{Loss: LossConfig{Enabled: true, MaxRetries: -1}}, "MaxRetries"},
		// The historical CLI bug: -lossretries/-lossburst silently ignored
		// when -loss 0. Now an explicit error.
		{"retries without enable", RunConfig{Loss: LossConfig{MaxRetries: 3}}, "Loss.Enabled is false"},
		{"burst without enable", RunConfig{Loss: LossConfig{Burst: true}}, "Loss.Enabled is false"},
		{"drop prob without enable", RunConfig{Loss: LossConfig{DropProb: 0.1}}, "Loss.Enabled is false"},
		{"enabled loss", RunConfig{Loss: LossConfig{Enabled: true, DropProb: 0.1, MaxRetries: 3}}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

// TestDeprecatedShimsFlowIntoDefault checks the compatibility contract: the
// deprecated Set* shims mutate the package default config that
// DefaultRunConfig snapshots, and nothing else.
func TestDeprecatedShimsFlowIntoDefault(t *testing.T) {
	defer SetTrainWorkers(0)
	defer SetLossConfig(LossConfig{})

	SetTrainWorkers(3)
	lc := DefaultLossConfig()
	lc.Enabled = true
	SetLossConfig(lc)

	got := DefaultRunConfig()
	if got.TrainWorkers != 3 {
		t.Errorf("DefaultRunConfig().TrainWorkers = %d, want 3", got.TrainWorkers)
	}
	if TrainWorkers() != 3 {
		t.Errorf("TrainWorkers() = %d, want 3", TrainWorkers())
	}
	if got.Loss != lc || CurrentLossConfig() != lc {
		t.Errorf("loss config did not round-trip: %+v / %+v", got.Loss, CurrentLossConfig())
	}

	// A snapshot taken earlier must not see later shim calls.
	SetTrainWorkers(5)
	if got.TrainWorkers != 3 {
		t.Error("DefaultRunConfig snapshot aliased the package default")
	}

	// Restoring the defaults restores NumCPU resolution.
	SetTrainWorkers(0)
	if TrainWorkers() < 1 {
		t.Errorf("TrainWorkers() = %d after reset", TrainWorkers())
	}
}

// TestDeprecatedShimsRaceWithRuns hammers the deprecated Set*/getter shims
// from a background goroutine while experiments run — the scenario the
// defaultMu guard exists for. Meaningful under -race (ci.sh runs the suite
// with it): an unguarded package default is a detector hit here. The shim
// values written are all valid configs, so runs snapshotting mid-hammer
// still pass beginRun validation.
func TestDeprecatedShimsRaceWithRuns(t *testing.T) {
	defer SetTrainWorkers(0)
	defer SetLossConfig(LossConfig{})

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		lossOn := DefaultLossConfig()
		lossOn.Enabled = true
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			SetTrainWorkers(i % 4)
			_ = TrainWorkers()
			if i%2 == 0 {
				SetLossConfig(lossOn)
			} else {
				SetLossConfig(LossConfig{})
			}
			_ = CurrentLossConfig()
		}
	}()

	e, err := FindExperiment("e7")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		// A nil config snapshots the package default mid-hammer — the
		// racy read path the mutex must make safe.
		if _, err := e.Run(context.Background(), nil); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	close(stop)
	<-done
}

func TestScaled(t *testing.T) {
	// Identity at the default scale for every base the experiments use.
	c := &RunConfig{SampleScale: 1}
	for _, base := range []int{1, 5, 8, 12, 25, 32, 60, 150, 400, 700, 1200, 2000, 4000} {
		if got := c.scaled(base); got != base {
			t.Errorf("scaled(%d) at scale 1 = %d", base, got)
		}
	}
	half := &RunConfig{SampleScale: 0.5}
	if got := half.scaled(700); got != 350 {
		t.Errorf("scaled(700) at 0.5 = %d, want 350", got)
	}
	// Rounding, not truncation.
	if got := half.scaled(25); got != 13 {
		t.Errorf("scaled(25) at 0.5 = %d, want 13", got)
	}
	// Floor at 1 so no experiment degenerates to an empty dataset.
	tiny := &RunConfig{SampleScale: 0.001}
	if got := tiny.scaled(5); got != 1 {
		t.Errorf("scaled(5) at 0.001 = %d, want 1", got)
	}
}

func TestRepeatsOr(t *testing.T) {
	if got := (&RunConfig{}).repeatsOr(3); got != 3 {
		t.Errorf("repeatsOr(3) with no override = %d", got)
	}
	if got := (&RunConfig{Repeats: 5}).repeatsOr(3); got != 5 {
		t.Errorf("repeatsOr(3) with Repeats 5 = %d", got)
	}
}

func TestBeginRun(t *testing.T) {
	// The caller's config is cloned, never mutated.
	cfg := &RunConfig{Seed: 9}
	h, err := beginRun(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if h.cfg == cfg {
		t.Error("beginRun did not clone the caller's config")
	}
	if h.cfg.SampleScale != 1 {
		t.Errorf("normalized SampleScale = %g, want 1", h.cfg.SampleScale)
	}
	if cfg.SampleScale != 0 {
		t.Error("beginRun mutated the caller's config")
	}

	// Invalid configs are rejected before any work happens.
	if _, err := beginRun(context.Background(), &RunConfig{TrainWorkers: -1}); err == nil {
		t.Error("beginRun accepted an invalid config")
	}

	// A canceled context stops the run at entry.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := beginRun(ctx, nil); err == nil {
		t.Error("beginRun ignored a canceled context")
	}
}

func TestCanceledContextStopsExperiments(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, id := range []string{"e7", "e9", "e13"} {
		e, err := FindExperiment(id)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(ctx, nil); err == nil {
			t.Errorf("%s: run with canceled context succeeded", id)
		}
	}
}

func TestTimingsStagesOrder(t *testing.T) {
	tm := Timings{StageTotal: 1, "zzz": 1, StageEval: 1, StageDataset: 1, "aaa": 1}
	got := tm.Stages()
	want := []string{StageDataset, StageEval, StageTotal, "aaa", "zzz"}
	if len(got) != len(want) {
		t.Fatalf("Stages() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Stages() = %v, want %v", got, want)
		}
	}
}
