package zeiot

import (
	"context"
	"fmt"
	"time"

	"zeiot/internal/mac"
)

// RunE6BackscatterMAC regenerates the §IV.A coexistence claims of the
// backscatter MAC [64]: across a WLAN-load sweep, the proposed scheduled
// MAC keeps backscatter delivery high without hurting WLAN performance,
// the uncoordinated baseline collides and corrupts WLAN frames, and
// disabling dummy packets reproduces the stated low-traffic failure mode.
func RunE6BackscatterMAC(ctx context.Context, rc *RunConfig) (*Result, error) {
	h, err := beginRun(ctx, rc)
	if err != nil {
		return nil, err
	}
	seed := h.cfg.Seed
	// SampleScale moves the simulated seconds per sweep cell.
	duration := time.Duration(h.cfg.scaled(8)) * time.Second
	loads := []float64{5, 25, 100, 400}
	res := &Result{
		ID:         "e6",
		Title:      "WLAN + backscatter coexistence across load",
		PaperClaim: "scheduling by registered cycles preserves both sides; backscatter errors rise without enough WLAN traffic",
		Header:     []string{"wlan load (f/s)", "mode", "bs delivery", "bs collided", "bs missed", "dummies", "wlan delay", "wlan retries"},
		Summary:    map[string]float64{},
	}
	modes := []struct {
		name string
		cfg  func(mac.Config) mac.Config
	}{
		{"scheduled", func(c mac.Config) mac.Config { c.Mode = mac.ModeScheduled; return c }},
		{"sched-no-dummy", func(c mac.Config) mac.Config {
			c.Mode = mac.ModeScheduled
			c.DisableDummy = true
			return c
		}},
		{"aloha", func(c mac.Config) mac.Config { c.Mode = mac.ModeAloha; return c }},
	}
	for _, load := range loads {
		if err := h.ctx.Err(); err != nil {
			return nil, err
		}
		for _, m := range modes {
			cfg := mac.DefaultConfig()
			cfg.NumDevices = 20
			cfg.WLANRate = load
			cfg.Seed = seed
			cfg = m.cfg(cfg)
			metrics, err := mac.Run(cfg, duration)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, []string{
				f1(load), m.name,
				pct(metrics.BSDeliveryRatio()), fi(metrics.BSCollided), fi(metrics.BSMissed),
				fi(metrics.DummyFrames), metrics.MeanWLANDelay.Round(10 * time.Microsecond).String(), fi(metrics.WLANRetries),
			})
			key := fmt.Sprintf("%s_load%.0f", sanitizeKey(m.name), load)
			res.Summary["delivery_"+key] = metrics.BSDeliveryRatio()
			res.Summary["retries_"+key] = float64(metrics.WLANRetries)
		}
	}
	h.mark(StageEval)
	res.Notes = fmt.Sprintf("20 devices on 100 ms cycles, %d s per cell; delivery/collision/missed count completed cycles", int(duration/time.Second))
	return h.finish(res), nil
}
