package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"zeiot"
	"zeiot/internal/jobs"
	"zeiot/internal/obs"
)

// server is the daemon behind the HTTP API: a jobs.Pool running experiments,
// a result cache keyed by canonical config hash, per-job observability
// registries, and a daemon-level metrics registry for /metrics.
type server struct {
	pool    *jobs.Pool
	metrics *obs.Registry

	mu    sync.Mutex
	cache map[string][]byte   // ConfigKey → deterministic result bytes
	info  map[string]*jobInfo // job id → per-job registry + timings
}

// jobInfo holds what the pool does not: the per-job recorder (its snapshot
// is the job's live progress view) and the wall-time stage timings of the
// finished run (stripped from the cached result bytes, which must stay
// deterministic).
type jobInfo struct {
	reg     *obs.Registry
	timings zeiot.Timings
}

// newServer builds a daemon with the given worker and queue bounds. runFn
// overrides the job runner for tests; nil selects the real experiment
// runner.
func newServer(workers, queueCap int, runFn jobs.RunFunc) *server {
	s := &server{
		metrics: obs.NewRegistry(),
		cache:   make(map[string][]byte),
		info:    make(map[string]*jobInfo),
	}
	if runFn == nil {
		runFn = s.runJob
	}
	s.pool = jobs.NewPool(workers, queueCap, runFn)
	return s
}

// handler routes the daemon's API:
//
//	POST /jobs            submit a job: {"experiment":"e1","config":{...}}
//	GET  /jobs            list every job's status
//	GET  /jobs/{id}       one job's status + progress metrics
//	GET  /jobs/{id}/result the finished result, byte-identical to zeiotbench -json
//	GET  /metrics         daemon metrics, Prometheus text format
//	GET  /healthz         liveness probe
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// submitRequest is the POST /jobs body. Config is RunConfig-shaped JSON
// (exported field names: Seed, TrainWorkers, Loss, SampleScale, ...);
// unknown fields are rejected so a typoed knob can never silently run the
// default config.
type submitRequest struct {
	Experiment string          `json:"experiment"`
	Config     json.RawMessage `json:"config"`
}

// submitResponse answers POST /jobs: the job id to poll, its immediate
// state ("done" when served from cache, else "queued"), the canonical
// config key the result is cached under, and whether this submission hit
// the cache.
type submitResponse struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	Key      string `json:"key"`
	CacheHit bool   `json:"cache_hit"`
}

func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if req.Experiment == "" {
		httpError(w, http.StatusBadRequest, errors.New("missing \"experiment\""))
		return
	}
	rc := &zeiot.RunConfig{}
	if len(req.Config) > 0 {
		cdec := json.NewDecoder(bytes.NewReader(req.Config))
		cdec.DisallowUnknownFields()
		if err := cdec.Decode(rc); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad config: %w", err))
			return
		}
	}
	if rc.Recorder != nil {
		httpError(w, http.StatusBadRequest, errors.New("bad config: Recorder is server-side only"))
		return
	}
	key, err := zeiot.ConfigKey(req.Experiment, rc)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.metrics.Add("jobs_submitted", 1)

	// Cache check and job creation under one lock, so two identical
	// submissions racing an eviction-free cache still each get a coherent
	// answer (both may miss and run; the results are byte-identical, so
	// whichever finishes last overwrites with the same bytes).
	s.mu.Lock()
	cached, hit := s.cache[key]
	s.mu.Unlock()
	if hit {
		snap, err := s.pool.Complete(req.Experiment, key, cached)
		if err != nil {
			s.submitError(w, err)
			return
		}
		s.metrics.Add("cache_hits", 1)
		writeJSON(w, http.StatusOK, submitResponse{ID: snap.ID, State: string(snap.State), Key: key, CacheHit: true})
		return
	}
	snap, err := s.pool.Submit(req.Experiment, key, rc)
	if err != nil {
		s.submitError(w, err)
		return
	}
	s.metrics.Add("cache_misses", 1)
	writeJSON(w, http.StatusAccepted, submitResponse{ID: snap.ID, State: string(snap.State), Key: key})
}

// submitError maps pool rejections onto their HTTP statuses: a full queue
// is backpressure (429, retryable), a draining pool is shutdown (503).
func (s *server) submitError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		s.metrics.Add("rejected_queue_full", 1)
		httpError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, jobs.ErrDraining):
		s.metrics.Add("rejected_draining", 1)
		httpError(w, http.StatusServiceUnavailable, err)
	default:
		httpError(w, http.StatusInternalServerError, err)
	}
}

// jobStatus is the wire form of one job's status. Progress of a running
// job shows up in Metrics — the per-job registry snapshot (training
// curves, cache counters) grows as the run advances. TimingsSec appears
// once the run finished; it is wall time, the one nondeterministic block,
// which is exactly why it lives here and not in the cached result bytes.
type jobStatus struct {
	ID         string             `json:"id"`
	Experiment string             `json:"experiment"`
	Key        string             `json:"key"`
	State      string             `json:"state"`
	CacheHit   bool               `json:"cache_hit"`
	Error      string             `json:"error,omitempty"`
	Submitted  string             `json:"submitted,omitempty"`
	Started    string             `json:"started,omitempty"`
	Finished   string             `json:"finished,omitempty"`
	TimingsSec map[string]float64 `json:"timings_sec,omitempty"`
	Metrics    *obs.Snapshot      `json:"metrics,omitempty"`
}

func (s *server) status(snap jobs.Snapshot, withMetrics bool) jobStatus {
	st := jobStatus{
		ID:         snap.ID,
		Experiment: snap.Experiment,
		Key:        snap.Key,
		State:      string(snap.State),
		CacheHit:   snap.CacheHit,
		Error:      snap.Error,
		Submitted:  rfc3339(snap.Submitted),
		Started:    rfc3339(snap.Started),
		Finished:   rfc3339(snap.Finished),
	}
	s.mu.Lock()
	info := s.info[snap.ID]
	s.mu.Unlock()
	if info != nil {
		if len(info.timings) > 0 {
			st.TimingsSec = make(map[string]float64, len(info.timings))
			for stage, d := range info.timings {
				st.TimingsSec[stage] = d.Seconds()
			}
		}
		if withMetrics {
			st.Metrics = info.reg.Snapshot()
		}
	}
	return st
}

func (s *server) handleStatus(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.pool.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, s.status(snap, true))
}

func (s *server) handleList(w http.ResponseWriter, r *http.Request) {
	snaps := s.pool.List()
	out := make([]jobStatus, 0, len(snaps))
	for _, snap := range snaps {
		out = append(out, s.status(snap, false))
	}
	writeJSON(w, http.StatusOK, out)
}

// handleResult serves a finished job's result bytes verbatim — the same
// bytes `zeiotbench -e <exp> -json` prints for the same config, whether the
// job ran or was served from cache, so clients can diff results across
// submissions and against checked-in goldens.
func (s *server) handleResult(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.pool.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	if snap.State != jobs.StateDone {
		httpError(w, http.StatusConflict, fmt.Errorf("job %s is %s, not done", snap.ID, snap.State))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(snap.Result)
}

// handleMetrics exports the daemon registry as Prometheus text under the
// zeiotd_ prefix, with the pool and job-state gauges refreshed at scrape
// time.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	queued, running := s.pool.Depth()
	s.metrics.Gauge("queue_depth", float64(queued))
	s.metrics.Gauge("jobs_running", float64(running))
	counts := map[jobs.State]int{}
	for _, snap := range s.pool.List() {
		counts[snap.State]++
	}
	for _, st := range []jobs.State{jobs.StateQueued, jobs.StateRunning, jobs.StateDone, jobs.StateFailed, jobs.StateCanceled} {
		s.metrics.Gauge("jobs_state_"+string(st), float64(counts[st]))
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.metrics.Snapshot().WritePrometheus(w, "zeiotd_"); err != nil {
		httpError(w, http.StatusInternalServerError, err)
	}
}

// runJob is the pool's RunFunc: it runs one experiment under the job's
// config with a fresh per-job registry attached, and turns the Result into
// the deterministic byte form that is cached and served. Timings and
// Metrics are stripped from those bytes — both are nondeterministic or
// run-local — and parked in jobInfo for the status endpoint instead.
func (s *server) runJob(ctx context.Context, work jobs.Work) ([]byte, error) {
	rc := work.Payload.(*zeiot.RunConfig).Clone()
	reg := obs.NewRegistry()
	rc.Recorder = reg
	s.mu.Lock()
	s.info[work.ID] = &jobInfo{reg: reg}
	s.mu.Unlock()

	e, err := zeiot.FindExperiment(work.Experiment)
	if err != nil {
		return nil, err // unreachable: ConfigKey validated the id at submit
	}
	res, err := e.Run(ctx, rc)
	if err != nil {
		return nil, err
	}
	timings := res.Timings
	out, err := encodeResult(res)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.cache[work.Key] = out
	s.info[work.ID].timings = timings
	s.mu.Unlock()
	return out, nil
}

// drain shuts the pool down (grace semantics per jobs.Pool.Shutdown) and
// returns the final status of every job — the "flush status" half of the
// SIGTERM contract. The caller logs it before exiting.
func (s *server) drain(grace time.Duration) (jobs.Summary, []jobStatus) {
	sum := s.pool.Shutdown(grace)
	snaps := s.pool.List()
	out := make([]jobStatus, 0, len(snaps))
	for _, snap := range snaps {
		out = append(out, s.status(snap, false))
	}
	return sum, out
}

// encodeResult renders a Result exactly as `zeiotbench -json` does — a
// one-element array, two-space indent, trailing newline — with Timings and
// Metrics stripped so the bytes are deterministic: the property that makes
// cached responses byte-identical to fresh runs and directly diffable
// against the checked-in goldens.
func encodeResult(res *zeiot.Result) ([]byte, error) {
	res.Timings = nil
	res.Metrics = nil
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode([]*zeiot.Result{res}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func rfc3339(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.UTC().Format(time.RFC3339Nano)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
