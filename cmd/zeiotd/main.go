// Command zeiotd is the simulation-as-a-service daemon: the run-and-exit
// zeiotbench CLI promoted to a long-running multi-tenant server. Clients
// submit RunConfig-shaped jobs over HTTP/JSON; the daemon schedules them
// across a bounded worker pool behind a backpressured queue, streams status
// and progress while they run, and caches completed results by canonical
// config hash, so a repeated scenario sweep — the paper's "many clients,
// shared infrastructure" workload — is served from cache, byte-identical to
// a fresh run.
//
// Usage:
//
//	zeiotd                      # serve on 127.0.0.1:8321
//	zeiotd -addr 127.0.0.1:0    # pick a free port (printed on stdout)
//	zeiotd -addrfile /tmp/addr  # also write the bound address to a file
//	zeiotd -workers 4 -queue 64 # worker pool and queue bounds
//	zeiotd -grace 10s           # drain grace for SIGTERM shutdown
//
// API:
//
//	POST /jobs             {"experiment":"e1","config":{"Seed":1}} → 202 {id,...}
//	                       (cache hit → 200 with state "done"; queue full → 429;
//	                       draining → 503; invalid → 400)
//	GET  /jobs             all job statuses
//	GET  /jobs/{id}        one status, with per-job metrics as progress
//	GET  /jobs/{id}/result finished result, byte-identical to zeiotbench -json
//	GET  /metrics          daemon metrics (Prometheus text, zeiotd_ prefix)
//	GET  /healthz          liveness
//
// On SIGTERM/SIGINT the daemon stops accepting submissions, cancels jobs
// still queued, gives running jobs the -grace window before canceling their
// contexts, then flushes every job's final status to stdout and exits 0.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr     = flag.String("addr", "127.0.0.1:8321", "listen address (port 0 picks a free port)")
		addrFile = flag.String("addrfile", "", "write the bound address to this file once listening")
		workers  = flag.Int("workers", 0, "concurrent experiment runs (0 = NumCPU)")
		queueCap = flag.Int("queue", 64, "job queue capacity; submissions beyond it get 429")
		grace    = flag.Duration("grace", 10*time.Second, "drain window for running jobs on shutdown before their contexts are canceled")
	)
	flag.Parse()
	if *workers <= 0 {
		*workers = runtime.NumCPU()
	}

	s := newServer(*workers, *queueCap, nil)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "zeiotd: %v\n", err)
		return 2
	}
	bound := ln.Addr().String()
	fmt.Printf("zeiotd: listening on %s (workers %d, queue %d)\n", bound, *workers, *queueCap)
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "zeiotd: %v\n", err)
			return 2
		}
	}

	httpSrv := &http.Server{Handler: s.handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigCh:
		fmt.Printf("zeiotd: %s received, draining (grace %s)\n", sig, *grace)
		sum, statuses := s.drain(*grace)
		// Flush every job's final status, then the drain summary, so no
		// job's outcome is lost with the process.
		enc := json.NewEncoder(os.Stdout)
		for _, st := range statuses {
			enc.Encode(st)
		}
		fmt.Printf("zeiotd: drained: done=%d failed=%d canceled=%d\n", sum.Done, sum.Failed, sum.Canceled)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx)
		return 0
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "zeiotd: %v\n", err)
		return 1
	}
}
