// Command loadtest hammers a running zeiotd with a repeated experiment
// sweep and reports whether the daemon meets its throughput and cache-hit
// targets. It is the out-of-process counterpart to the in-process TestDaemonLoad:
// point it at a real daemon over TCP to measure the full HTTP path.
//
// The workload is the acceptance scenario: warm the cache with one real run
// per sweep config (seeds 1..-sweep), then fire -n submissions round-robin
// over those configs from -c concurrent clients. A healthy daemon serves the
// hammer phase almost entirely from cache, and every cached response is
// byte-identical to the fresh run it was warmed with.
//
// Usage:
//
//	zeiotd -addr 127.0.0.1:0 -addrfile /tmp/addr &
//	loadtest -url http://$(cat /tmp/addr) -experiment e1 -n 300 -c 8 \
//	         -minrate 50 -minhit 0.9
//
// Output is one JSON summary on stdout. Exit status: 0 when every threshold
// is met and no submission failed, 1 otherwise, 2 on usage errors.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"
)

func main() {
	os.Exit(run())
}

type submitResponse struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	Key      string `json:"key"`
	CacheHit bool   `json:"cache_hit"`
}

type summary struct {
	Experiment  string  `json:"experiment"`
	Sweep       int     `json:"sweep"`
	Submissions int     `json:"submissions"`
	Hits        int     `json:"hits"`
	Errors      int     `json:"errors"`
	ElapsedSec  float64 `json:"elapsed_sec"`
	RatePerSec  float64 `json:"rate_per_sec"`
	HitRatio    float64 `json:"hit_ratio"`
	Mismatched  int     `json:"mismatched"`
	OK          bool    `json:"ok"`
}

func run() int {
	var (
		baseURL    = flag.String("url", "", "daemon base URL, e.g. http://127.0.0.1:8321 (required)")
		experiment = flag.String("experiment", "e1", "experiment id to sweep")
		configJSON = flag.String("config", `{"Seed":1}`, "RunConfig JSON template; Seed is overridden per sweep entry")
		sweep      = flag.Int("sweep", 1, "number of distinct seeds (1..sweep) in the sweep")
		n          = flag.Int("n", 300, "hammer-phase submissions, round-robin over the sweep")
		c          = flag.Int("c", 8, "concurrent clients")
		minRate    = flag.Float64("minrate", 0, "fail unless the hammer phase sustains this many submissions/sec")
		minHit     = flag.Float64("minhit", 0, "fail unless this fraction of hammer submissions hit the cache")
		timeout    = flag.Duration("timeout", 5*time.Minute, "per-warmup-run poll deadline")
	)
	flag.Parse()
	if *baseURL == "" || *sweep < 1 || *n < 1 || *c < 1 {
		flag.Usage()
		return 2
	}
	url := strings.TrimRight(*baseURL, "/")

	var tmpl map[string]any
	if err := json.Unmarshal([]byte(*configJSON), &tmpl); err != nil {
		fmt.Fprintf(os.Stderr, "loadtest: bad -config: %v\n", err)
		return 2
	}

	// One request body per sweep entry: the template with Seed overridden.
	bodies := make([]string, *sweep)
	for i := range bodies {
		cfg := make(map[string]any, len(tmpl)+1)
		for k, v := range tmpl {
			cfg[k] = v
		}
		cfg["Seed"] = i + 1
		b, err := json.Marshal(map[string]any{"experiment": *experiment, "config": cfg})
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadtest: %v\n", err)
			return 2
		}
		bodies[i] = string(b)
	}

	// Warm phase: run each sweep entry once and keep its result bytes as
	// the byte-identity reference for the hammer phase.
	fresh := make([][]byte, *sweep)
	for i, body := range bodies {
		sr, code, err := submit(url, body)
		if err != nil || (code != http.StatusOK && code != http.StatusAccepted) {
			fmt.Fprintf(os.Stderr, "loadtest: warm submit %d: status %d, err %v\n", i+1, code, err)
			return 1
		}
		if err := pollDone(url, sr.ID, *timeout); err != nil {
			fmt.Fprintf(os.Stderr, "loadtest: warm job %s: %v\n", sr.ID, err)
			return 1
		}
		if fresh[i], err = result(url, sr.ID); err != nil {
			fmt.Fprintf(os.Stderr, "loadtest: warm result %s: %v\n", sr.ID, err)
			return 1
		}
	}

	// Hammer phase: -n submissions round-robin over the warm sweep.
	var (
		mu         sync.Mutex
		hits       int
		errCount   int
		mismatched int
	)
	next := make(chan int)
	go func() {
		for i := 0; i < *n; i++ {
			next <- i
		}
		close(next)
	}()
	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < *c; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				idx := i % *sweep
				sr, code, err := submit(url, bodies[idx])
				if err != nil || (code != http.StatusOK && code != http.StatusAccepted) {
					mu.Lock()
					errCount++
					mu.Unlock()
					continue
				}
				hit := sr.CacheHit
				if !hit {
					// A miss mid-hammer means a concurrent identical run;
					// wait it out so the byte check below still applies.
					if err := pollDone(url, sr.ID, *timeout); err != nil {
						mu.Lock()
						errCount++
						mu.Unlock()
						continue
					}
				}
				got, err := result(url, sr.ID)
				mu.Lock()
				if hit {
					hits++
				}
				if err != nil {
					errCount++
				} else if !bytes.Equal(got, fresh[idx]) {
					mismatched++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	sum := summary{
		Experiment:  *experiment,
		Sweep:       *sweep,
		Submissions: *n,
		Hits:        hits,
		Errors:      errCount,
		ElapsedSec:  elapsed.Seconds(),
		RatePerSec:  float64(*n) / elapsed.Seconds(),
		HitRatio:    float64(hits) / float64(*n),
		Mismatched:  mismatched,
	}
	sum.OK = sum.Errors == 0 && sum.Mismatched == 0 &&
		sum.RatePerSec >= *minRate && sum.HitRatio >= *minHit
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(sum)
	if !sum.OK {
		return 1
	}
	return 0
}

func submit(url, body string) (submitResponse, int, error) {
	resp, err := http.Post(url+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		return submitResponse{}, 0, err
	}
	defer resp.Body.Close()
	var sr submitResponse
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			return submitResponse{}, resp.StatusCode, err
		}
	}
	return sr, resp.StatusCode, nil
}

func pollDone(url, id string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/jobs/" + id)
		if err != nil {
			return err
		}
		var st struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return err
		}
		switch st.State {
		case "done":
			return nil
		case "failed", "canceled":
			return fmt.Errorf("job %s %s: %s", id, st.State, st.Error)
		}
		time.Sleep(20 * time.Millisecond)
	}
	return fmt.Errorf("job %s did not finish within %s", id, timeout)
}

func result(url, id string) ([]byte, error) {
	resp, err := http.Get(url + "/jobs/" + id + "/result")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, out)
	}
	return out, nil
}
