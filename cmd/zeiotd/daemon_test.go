package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"zeiot"
	"zeiot/internal/jobs"
)

// newTestServer starts an httptest server around a daemon with the given
// pool bounds. A nil runFn selects the real experiment runner.
func newTestServer(t *testing.T, workers, queueCap int, runFn jobs.RunFunc) (*server, *httptest.Server) {
	t.Helper()
	s := newServer(workers, queueCap, runFn)
	ts := httptest.NewServer(s.handler())
	t.Cleanup(func() {
		ts.Close()
		s.drain(0)
	})
	return s, ts
}

// submit POSTs a job and decodes the response; body is the raw request JSON.
func submit(t *testing.T, ts *httptest.Server, body string) (submitResponse, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr submitResponse
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatalf("decoding submit response: %v", err)
		}
	}
	return sr, resp.StatusCode
}

// pollDone polls a job's status until it reaches a terminal state and
// returns it; it fails the test if the job does not finish in time.
func pollDone(t *testing.T, ts *httptest.Server, id string) jobStatus {
	t.Helper()
	deadline := time.Now().Add(5 * time.Minute)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st jobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if jobs.State(st.State).Terminal() {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return jobStatus{}
}

// getResult fetches a finished job's result bytes.
func getResult(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET result for %s: status %d, body %s", id, resp.StatusCode, out)
	}
	return out
}

// TestSubmitValidation: every malformed submission is a 400, never a queued
// job running a half-understood config.
func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, 1, 4, func(ctx context.Context, w jobs.Work) ([]byte, error) {
		return nil, fmt.Errorf("validation test must not run jobs")
	})
	cases := map[string]string{
		"not json":          `{"experiment"`,
		"unknown top field": `{"experiment":"e1","confg":{}}`,
		"missing exp":       `{"config":{"Seed":1}}`,
		"unknown exp":       `{"experiment":"e99","config":{"Seed":1}}`,
		"unknown knob":      `{"experiment":"e1","config":{"Sede":1}}`,
		"invalid value":     `{"experiment":"e1","config":{"TrainWorkers":-1}}`,
		"recorder":          `{"experiment":"e1","config":{"Recorder":{}}}`,
		"bad loss":          `{"experiment":"e1","config":{"Loss":{"DropProb":0.5}}}`,
	}
	for name, body := range cases {
		if _, code := submit(t, ts, body); code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, code)
		}
	}
	resp, err := http.Get(ts.URL + "/jobs/j1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status of never-created job = %d, want 404", resp.StatusCode)
	}
}

// TestBackpressureAndDrain drives the daemon's two rejection paths through
// the HTTP layer with a blocking runner: a full queue answers 429, and a
// draining daemon answers 503 while keeping every prior job's status
// queryable.
func TestBackpressureAndDrain(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan string, 1)
	s, ts := newTestServer(t, 1, 1, func(ctx context.Context, w jobs.Work) ([]byte, error) {
		started <- w.ID
		select {
		case <-gate:
			return []byte("done\n"), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})

	// Distinct seeds: three distinct cache keys, so nothing is served from
	// cache. Job 1 occupies the worker, job 2 fills the queue, job 3 must
	// bounce with 429.
	first, code := submit(t, ts, `{"experiment":"e1","config":{"Seed":101}}`)
	if code != http.StatusAccepted {
		t.Fatalf("first submit: status %d", code)
	}
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never picked up the first job")
	}
	if _, code := submit(t, ts, `{"experiment":"e1","config":{"Seed":102}}`); code != http.StatusAccepted {
		t.Fatalf("second submit: status %d", code)
	}
	if _, code := submit(t, ts, `{"experiment":"e1","config":{"Seed":103}}`); code != http.StatusTooManyRequests {
		t.Errorf("overflow submit: status %d, want 429", code)
	}

	// A result request for the still-running job is a 409, not a 404 or an
	// empty body.
	resp, err := http.Get(ts.URL + "/jobs/" + first.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("result of running job: status %d, want 409", resp.StatusCode)
	}

	// /metrics must report the rejection and the live pool state.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"zeiotd_rejected_queue_full 1\n",
		"zeiotd_jobs_running 1\n",
		"zeiotd_queue_depth 1\n",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}

	// Drain: the running job is canceled (gate never opens), the queued job
	// is canceled immediately, and both statuses survive. New submissions
	// answer 503.
	sum, statuses := s.drain(10 * time.Millisecond)
	if sum.Canceled != 2 {
		t.Errorf("drain summary = %+v, want 2 canceled", sum)
	}
	if len(statuses) != 2 {
		t.Errorf("drain flushed %d statuses, want 2", len(statuses))
	}
	if _, code := submit(t, ts, `{"experiment":"e1","config":{"Seed":104}}`); code != http.StatusServiceUnavailable {
		t.Errorf("submit while draining: status %d, want 503", code)
	}
	for _, id := range []string{"j1", "j2"} {
		resp, err := http.Get(ts.URL + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st jobStatus
		json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if st.State != string(jobs.StateCanceled) {
			t.Errorf("job %s after drain = %q, want canceled", id, st.State)
		}
	}
}

// TestDaemonE1Golden is the daemon half of the byte-identity acceptance: a
// default e1 submission through the HTTP path must reproduce the checked-in
// golden byte for byte, and a resubmission must be served from cache with
// the identical bytes.
func TestDaemonE1Golden(t *testing.T) {
	if testing.Short() {
		t.Skip("full e1 run through the daemon")
	}
	_, ts := newTestServer(t, 2, 8, nil)

	golden, err := os.ReadFile("../../testdata/e1_seed1.golden.json")
	if err != nil {
		t.Fatal(err)
	}

	fresh, code := submit(t, ts, `{"experiment":"e1","config":{"Seed":1}}`)
	if code != http.StatusAccepted || fresh.CacheHit {
		t.Fatalf("fresh submit: status %d, cache_hit %v", code, fresh.CacheHit)
	}
	st := pollDone(t, ts, fresh.ID)
	if st.State != string(jobs.StateDone) {
		t.Fatalf("job %s finished %s (%s)", fresh.ID, st.State, st.Error)
	}
	if st.TimingsSec["total"] <= 0 {
		t.Errorf("finished status has no total timing: %v", st.TimingsSec)
	}
	if st.Metrics == nil || st.Metrics.Gauges["config_seed"] != 1 {
		t.Errorf("finished status has no per-job metrics: %+v", st.Metrics)
	}
	got := getResult(t, ts, fresh.ID)
	if !bytes.Equal(got, golden) {
		t.Errorf("daemon e1 result diverges from testdata/e1_seed1.golden.json (%d vs %d bytes)", len(got), len(golden))
	}

	// SampleScale 0 and 1 are the same canonical config: both must hit the
	// cache of the run above, 200 immediately, byte-identical result.
	for _, body := range []string{
		`{"experiment":"e1","config":{"Seed":1}}`,
		`{"experiment":"e1","config":{"Seed":1,"SampleScale":1}}`,
	} {
		hit, code := submit(t, ts, body)
		if code != http.StatusOK || !hit.CacheHit || hit.State != string(jobs.StateDone) {
			t.Fatalf("resubmit %s: status %d, %+v", body, code, hit)
		}
		if hit.Key != fresh.Key {
			t.Errorf("resubmit key %s != original %s", hit.Key, fresh.Key)
		}
		if cached := getResult(t, ts, hit.ID); !bytes.Equal(cached, got) {
			t.Error("cached result bytes differ from the fresh run")
		}
	}
}

// TestDaemonMixedConfigConcurrent is the PR 10 concurrency satellite: e1
// jobs at {TrainWorkers: 1} and {TrainWorkers: 4, loss on} run through the
// daemon concurrently — cached and uncached submissions interleaved — and
// every result is byte-identical to the serial baseline of its config.
func TestDaemonMixedConfigConcurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("multiple e1 runs through the daemon")
	}
	variants := []struct {
		name string
		body string
		cfg  *zeiot.RunConfig
	}{
		{
			name: "serial-clean",
			body: `{"experiment":"e1","config":{"Seed":1,"TrainWorkers":1,"SampleScale":0.5}}`,
			cfg:  &zeiot.RunConfig{Seed: 1, TrainWorkers: 1, SampleScale: 0.5},
		},
		{
			name: "parallel-lossy",
			body: `{"experiment":"e1","config":{"Seed":1,"TrainWorkers":4,"SampleScale":0.5,"Loss":{"Enabled":true,"DropProb":0.2,"MaxRetries":2}}}`,
			cfg: &zeiot.RunConfig{Seed: 1, TrainWorkers: 4, SampleScale: 0.5,
				Loss: zeiot.LossConfig{Enabled: true, DropProb: 0.2, MaxRetries: 2}},
		},
	}

	// Serial baselines, through the same encoder the daemon caches.
	e, err := zeiot.FindExperiment("e1")
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]byte, len(variants))
	for i, v := range variants {
		res, err := e.Run(context.Background(), v.cfg)
		if err != nil {
			t.Fatalf("%s baseline: %v", v.name, err)
		}
		if want[i], err = encodeResult(res); err != nil {
			t.Fatal(err)
		}
	}

	_, ts := newTestServer(t, 4, 32, nil)

	// Phase 1: both variants in flight at once, uncached.
	ids := make([]string, len(variants))
	for i, v := range variants {
		sr, code := submit(t, ts, v.body)
		if code != http.StatusAccepted {
			t.Fatalf("%s: status %d", v.name, code)
		}
		ids[i] = sr.ID
	}
	for i, v := range variants {
		st := pollDone(t, ts, ids[i])
		if st.State != string(jobs.StateDone) {
			t.Fatalf("%s finished %s (%s)", v.name, st.State, st.Error)
		}
		if got := getResult(t, ts, ids[i]); !bytes.Equal(got, want[i]) {
			t.Errorf("%s: concurrent daemon result diverges from serial baseline", v.name)
		}
	}

	// Phase 2: hammer both variants from many goroutines; every submission
	// must be served from cache, byte-identical to its baseline.
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				v := variants[(g+i)%len(variants)]
				sr, code := submit(t, ts, v.body)
				if code != http.StatusOK || !sr.CacheHit {
					errs <- fmt.Errorf("%s: cached submit status %d, hit %v", v.name, code, sr.CacheHit)
					return
				}
				if got := getResult(t, ts, sr.ID); !bytes.Equal(got, want[(g+i)%len(variants)]) {
					errs <- fmt.Errorf("%s: cached result diverges from serial baseline", v.name)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestDaemonLoad is the PR 10 load acceptance: a repeated e1 sweep sustains
// at least 50 submissions/sec with at least 90% of submissions served from
// the result cache, and cached responses stay byte-identical to the fresh
// run. The rate is measured over the steady-state (warm-cache) phase, which
// is exactly the regime the acceptance describes.
func TestDaemonLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("load test runs a full e1 warmup")
	}
	s, ts := newTestServer(t, 2, 64, nil)

	// Warm: one real run (the only cache miss this test allows).
	warm, code := submit(t, ts, `{"experiment":"e1","config":{"Seed":1}}`)
	if code != http.StatusAccepted {
		t.Fatalf("warm submit: status %d", code)
	}
	if st := pollDone(t, ts, warm.ID); st.State != string(jobs.StateDone) {
		t.Fatalf("warm job finished %s (%s)", st.State, st.Error)
	}
	fresh := getResult(t, ts, warm.ID)

	const (
		clients = 8
		perC    = 40 // 320 submissions total
	)
	var hits int64
	var mu sync.Mutex
	sample := []byte(nil) // one cached body per client, spot-checked below
	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			myHits := 0
			var body []byte
			for i := 0; i < perC; i++ {
				sr, code := submit(t, ts, `{"experiment":"e1","config":{"Seed":1}}`)
				if code != http.StatusOK {
					errs <- fmt.Errorf("warm-cache submit: status %d", code)
					return
				}
				if sr.CacheHit {
					myHits++
				}
				if i == 0 {
					body = getResult(t, ts, sr.ID)
				}
			}
			mu.Lock()
			hits += int64(myHits)
			sample = body
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	total := int64(clients * perC)
	rate := float64(total) / elapsed.Seconds()
	hitRatio := float64(hits) / float64(total)
	t.Logf("load: %d submissions in %v (%.0f/sec), hit ratio %.3f", total, elapsed, rate, hitRatio)
	if rate < 50 {
		t.Errorf("sustained %.1f submissions/sec, acceptance floor is 50", rate)
	}
	if hitRatio < 0.9 {
		t.Errorf("cache hit ratio %.3f, acceptance floor is 0.90", hitRatio)
	}
	if !bytes.Equal(sample, fresh) {
		t.Error("cached response bytes diverge from the fresh run")
	}

	// The daemon's own counters must agree: exactly one miss (the warmup).
	snap := s.metrics.Snapshot()
	if snap.Counters["cache_misses"] != 1 {
		t.Errorf("cache_misses = %d, want 1", snap.Counters["cache_misses"])
	}
	if snap.Counters["cache_hits"] != hits {
		t.Errorf("cache_hits = %d, client-observed hits %d", snap.Counters["cache_hits"], hits)
	}
}
