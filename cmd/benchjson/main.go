// Command benchjson converts `go test -bench` text output (read from
// stdin) into the repo's BENCH_pr<N>.json record shape, so every PR's
// benchmark snapshot is machine-diffable instead of a dated text blob.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | benchjson -record "PR 3" -commit abc1234 > BENCH_pr3.json
//
// Standard value/unit pairs (ns/op, B/op, allocs/op) map to the top-level
// ns_per_op / bytes_per_op / allocs_per_op fields; units ending in
// _stage_sec — the per-stage wall times from Result.Timings that
// benchExperiment republishes — land in the per-benchmark timings_sec map;
// every other pair — the custom b.ReportMetric keys the experiment
// benchmarks emit — lands in the per-benchmark metrics map.
// goos/goarch/pkg/cpu header lines are carried through verbatim.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

type benchmark struct {
	Name       string             `json:"name"`
	Iterations int                `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
	Timings    map[string]float64 `json:"timings_sec,omitempty"`
	NsPerOp    float64            `json:"ns_per_op,omitempty"`
	BytesPerOp float64            `json:"bytes_per_op,omitempty"`
	AllocsOp   float64            `json:"allocs_per_op,omitempty"`
}

type record struct {
	Record     string      `json:"record"`
	Recorded   string      `json:"recorded"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []benchmark `json:"benchmarks"`
}

func main() {
	var (
		desc   = flag.String("record", "benchmark run", "one-line description of what was recorded")
		commit = flag.String("commit", "unknown", "commit hash the run measured")
	)
	flag.Parse()

	rec := record{
		Record:   *desc,
		Recorded: fmt.Sprintf("%s commit %s", time.Now().UTC().Format("2006-01-02T15:04:05Z"), *commit),
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rec.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rec.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rec.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rec.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line); ok {
				rec.Benchmarks = append(rec.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseBenchLine splits "BenchmarkName-8  3  414299577 ns/op  0.875 acc  ..."
// into the record shape: field 0 is the name (GOMAXPROCS suffix stripped),
// field 1 the iteration count, and the rest value/unit pairs.
func parseBenchLine(line string) (benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 2 {
		return benchmark{}, false
	}
	name := f[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.Atoi(f[1])
	if err != nil {
		return benchmark{}, false
	}
	b := benchmark{Name: name, Iterations: iters}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsOp = v
		default:
			if stage, ok := strings.CutSuffix(unit, "_stage_sec"); ok {
				if b.Timings == nil {
					b.Timings = make(map[string]float64)
				}
				b.Timings[stage] = v
				continue
			}
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = v
		}
	}
	return b, true
}
