// Command zeiotbench regenerates the paper's tables and figures.
//
// Usage:
//
//	zeiotbench                 # run every experiment
//	zeiotbench -e e1,e6        # run selected experiments
//	zeiotbench -seed 7         # change the root seed
//	zeiotbench -parallel 4     # run up to 4 experiments concurrently
//	zeiotbench -trainworkers 4 # CNN training workers (results unchanged)
//	zeiotbench -loss 0.1       # lossy-link fault injection (e8/e11 gain loss dimensions)
//	zeiotbench -list           # list experiments
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"zeiot"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		ids      = flag.String("e", "", "comma-separated experiment ids (default: all)")
		seed     = flag.Uint64("seed", 1, "root random seed")
		list     = flag.Bool("list", false, "list experiments and exit")
		jsonOut  = flag.Bool("json", false, "emit results as a JSON array instead of tables")
		parallel = flag.Int("parallel", 1, "max experiments run concurrently (0 = NumCPU)")
		trainW   = flag.Int("trainworkers", 0, "CNN training workers per experiment (0 = NumCPU); any value yields bit-identical results")
		loss     = flag.Float64("loss", 0, "per-link drop probability for fault injection (0 = disabled; e8 gains a loss sweep, e11 charges retransmission energy)")
		lossB    = flag.Bool("lossburst", false, "use Gilbert-Elliott burst loss instead of independent drops")
		lossR    = flag.Int("lossretries", 3, "max retransmissions per hop for the reliable transport (0 = no retries)")
	)
	flag.Parse()
	zeiot.SetTrainWorkers(*trainW)
	if *loss < 0 || *loss > 1 {
		fmt.Fprintln(os.Stderr, "zeiotbench: -loss must be in [0, 1]")
		return 2
	}
	if *loss > 0 {
		cfg := zeiot.DefaultLossConfig()
		cfg.Enabled = true
		cfg.DropProb = *loss
		cfg.Burst = *lossB
		cfg.MaxRetries = *lossR
		zeiot.SetLossConfig(cfg)
	}

	if *list {
		for _, e := range zeiot.Experiments() {
			fmt.Printf("%-4s %s\n     paper: %s\n", e.ID, e.Title, e.Paper)
		}
		return 0
	}

	var selected []zeiot.Experiment
	if *ids == "" {
		selected = zeiot.Experiments()
	} else {
		for _, id := range strings.Split(*ids, ",") {
			e, err := zeiot.FindExperiment(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
			selected = append(selected, e)
		}
	}

	workers := *parallel
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(selected) {
		workers = len(selected)
	}

	// Each experiment derives its own rng stream from the root seed, so
	// running them concurrently cannot change any result — only the wall
	// clock. Results are collected per index and printed in order.
	results := make([]*zeiot.Result, len(selected))
	durations := make([]time.Duration, len(selected))
	errs := make([]error, len(selected))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, e := range selected {
		wg.Add(1)
		go func(i int, e zeiot.Experiment) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			start := time.Now()
			results[i], errs[i] = e.Run(*seed)
			durations[i] = time.Since(start)
		}(i, e)
	}
	wg.Wait()

	failed := 0
	var jsonResults []*zeiot.Result
	for i, e := range selected {
		if errs[i] != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, errs[i])
			failed++
			continue
		}
		if *jsonOut {
			jsonResults = append(jsonResults, results[i])
			continue
		}
		if _, err := results[i].WriteTo(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("(%s in %s)\n\n", e.ID, durations[i].Round(time.Millisecond))
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonResults); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if failed > 0 {
		return 1
	}
	return 0
}
