// Command zeiotbench regenerates the paper's tables and figures.
//
// Usage:
//
//	zeiotbench                 # run every experiment
//	zeiotbench -e e1,e6        # run selected experiments
//	zeiotbench -seed 7         # change the root seed
//	zeiotbench -list           # list experiments
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"zeiot"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		ids     = flag.String("e", "", "comma-separated experiment ids (default: all)")
		seed    = flag.Uint64("seed", 1, "root random seed")
		list    = flag.Bool("list", false, "list experiments and exit")
		jsonOut = flag.Bool("json", false, "emit results as a JSON array instead of tables")
	)
	flag.Parse()

	if *list {
		for _, e := range zeiot.Experiments() {
			fmt.Printf("%-4s %s\n     paper: %s\n", e.ID, e.Title, e.Paper)
		}
		return 0
	}

	var selected []zeiot.Experiment
	if *ids == "" {
		selected = zeiot.Experiments()
	} else {
		for _, id := range strings.Split(*ids, ",") {
			e, err := zeiot.FindExperiment(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
			selected = append(selected, e)
		}
	}

	failed := 0
	var results []*zeiot.Result
	for _, e := range selected {
		start := time.Now()
		result, err := e.Run(*seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			failed++
			continue
		}
		if *jsonOut {
			results = append(results, result)
			continue
		}
		if _, err := result.WriteTo(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("(%s in %s)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if failed > 0 {
		return 1
	}
	return 0
}
