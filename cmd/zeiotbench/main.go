// Command zeiotbench regenerates the paper's tables and figures.
//
// Usage:
//
//	zeiotbench                 # run every experiment
//	zeiotbench -e e1,e6        # run selected experiments
//	zeiotbench -seed 7         # change the root seed
//	zeiotbench -parallel 4     # run up to 4 experiments concurrently
//	zeiotbench -trainworkers 4 # CNN training workers (results unchanged)
//	zeiotbench -samples 0.5    # scale dataset/trial sizes (quick sweeps)
//	zeiotbench -repeats 5      # override accuracy-averaging repeat counts
//	zeiotbench -loss 0.1       # lossy-link fault injection (e8/e11 gain loss dimensions)
//	zeiotbench -batchkernel 8  # batched im2col/GEMM CNN training (results unchanged)
//	zeiotbench -quant          # add int8 fixed-point inference rows (e1/e2/e13)
//	zeiotbench -e e16 -nodes 100000  # crowd-scale node count (free-scale experiments)
//	zeiotbench -e e17 -harvest 2 -harvestprofile solar  # intermittent-power runtime knobs
//	zeiotbench -e e17 -checkpoint f.ck -killafter 200   # simulate a power failure (exits nonzero)
//	zeiotbench -e e17 -checkpoint f.ck -resume          # resume; output matches an uninterrupted run
//	zeiotbench -e e18 -modalities gait,har,gait+vitals  # restrict the cross-modal matrix rows
//	zeiotbench -timings        # keep per-stage wall times in the output
//	zeiotbench -metrics        # collect observability metrics; keep them in -json output
//	zeiotbench -metrics-out m.prom  # also export them as Prometheus text
//	zeiotbench -pprof :6060    # serve net/http/pprof while running
//	zeiotbench -cpuprofile cpu.pb.gz -memprofile mem.pb.gz
//	zeiotbench -list           # list experiments
//
// The per-run flags -trainworkers, -samples, -repeats, -loss, -lossburst,
// -lossretries, -batchkernel, -quant, -nodes, -harvest and -harvestprofile
// also accept a comma-separated list matching the -e list, so
// -parallel can legally run differently-configured experiments concurrently:
//
//	zeiotbench -e e1,e8 -parallel 2 -trainworkers 1,4 -loss 0,0.1
//
// Observability (-metrics / -metrics-out) never changes any result: each
// experiment gets its own obs.Registry, recording reads values the run
// already computed, and metric names carrying wall time use the walltime_
// prefix so the deterministic remainder diffs byte-for-byte across runs.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"zeiot"
	"zeiot/internal/obs"
)

func main() {
	os.Exit(run())
}

// perRun parses a per-run flag value: a single value broadcasts to all n
// runs, a comma-separated list must have exactly n entries.
func perRun[T any](name, val string, n int, parse func(string) (T, error)) ([]T, error) {
	parts := strings.Split(val, ",")
	if len(parts) != 1 && len(parts) != n {
		return nil, fmt.Errorf("-%s has %d values for %d experiments (give one value or one per -e entry)", name, len(parts), n)
	}
	out := make([]T, n)
	for i := range out {
		s := parts[0]
		if len(parts) == n {
			s = parts[i]
		}
		v, err := parse(strings.TrimSpace(s))
		if err != nil {
			return nil, fmt.Errorf("-%s: bad value %q: %v", name, s, err)
		}
		out[i] = v
	}
	return out, nil
}

func run() int {
	var (
		ids      = flag.String("e", "", "comma-separated experiment ids (default: all)")
		seed     = flag.Uint64("seed", 1, "root random seed")
		list     = flag.Bool("list", false, "list experiments and exit")
		jsonOut  = flag.Bool("json", false, "emit results as a JSON array instead of tables")
		parallel = flag.Int("parallel", 1, "max experiments run concurrently (0 = NumCPU)")
		timings  = flag.Bool("timings", false, "keep per-stage wall times in the output (nondeterministic, so off by default)")
		trainW   = flag.String("trainworkers", "0", "CNN training workers per experiment (0 = NumCPU); any value yields bit-identical results")
		samples  = flag.String("samples", "1", "sample-count scale: multiplies dataset/trial sizes (1 = paper defaults)")
		repeats  = flag.String("repeats", "0", "accuracy-averaging repeats (0 = experiment default)")
		loss     = flag.String("loss", "0", "per-link drop probability for fault injection (0 = disabled; e8 gains a loss sweep, e11 charges retransmission energy)")
		lossB    = flag.String("lossburst", "false", "use Gilbert-Elliott burst loss instead of independent drops")
		lossR    = flag.String("lossretries", "3", "max retransmissions per hop for the reliable transport (0 = no retries)")
		batchK   = flag.String("batchkernel", "0", "batched im2col/GEMM CNN training block size (0/1 = per-sample; any value yields bit-identical results)")
		quant    = flag.String("quant", "false", "add int8 fixed-point inference accuracy rows to the CNN experiments (e1/e2/e13)")
		nodesF   = flag.String("nodes", "0", "node count for free-scale experiments (e16; 0 = experiment default)")
		harvF    = flag.String("harvest", "0", "harvest power scale for the intermittent runtime (e17; 0 or 1 = paper defaults)")
		harvP    = flag.String("harvestprofile", "", "harvest trace profile: rf, solar, thermal, or mixed (e17; default mixed)")
		modsF    = flag.String("modalities", "", "comma-separated modality names for the cross-modal matrix (e18; empty = every registered modality). Commas pick modalities here, not per--e values")
		ckptF    = flag.String("checkpoint", "", "checkpoint file for the e17 kill/resume flow")
		killF    = flag.Int("killafter", 0, "simulate a power failure after N training batches: write -checkpoint and exit nonzero (e17)")
		resumeF  = flag.Bool("resume", false, "resume e17 from the -checkpoint file instead of starting fresh")
		metrics  = flag.Bool("metrics", false, "collect observability metrics and keep the metrics block in -json output")
		metOut   = flag.String("metrics-out", "", "write collected metrics as Prometheus text to this path (implies collection)")
		pprofA   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. :6060) while experiments run")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this path")
		memProf  = flag.String("memprofile", "", "write a heap profile to this path on exit")
	)
	flag.Parse()

	if *pprofA != "" {
		go func() {
			if err := http.ListenAndServe(*pprofA, nil); err != nil {
				fmt.Fprintf(os.Stderr, "zeiotbench: pprof server: %v\n", err)
			}
		}()
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "zeiotbench: %v\n", err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "zeiotbench: %v\n", err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "zeiotbench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "zeiotbench: %v\n", err)
			}
		}()
	}

	if *list {
		for _, e := range zeiot.Experiments() {
			fmt.Printf("%-4s %s\n     paper: %s\n", e.ID, e.Title, e.Paper)
		}
		return 0
	}

	var selected []zeiot.Experiment
	if *ids == "" {
		selected = zeiot.Experiments()
	} else {
		for _, id := range strings.Split(*ids, ",") {
			e, err := zeiot.FindExperiment(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
			selected = append(selected, e)
		}
	}

	n := len(selected)
	fail := func(err error) int {
		fmt.Fprintf(os.Stderr, "zeiotbench: %v\n", err)
		return 2
	}
	twVals, err := perRun("trainworkers", *trainW, n, strconv.Atoi)
	if err != nil {
		return fail(err)
	}
	scVals, err := perRun("samples", *samples, n, parseFloat)
	if err != nil {
		return fail(err)
	}
	rpVals, err := perRun("repeats", *repeats, n, strconv.Atoi)
	if err != nil {
		return fail(err)
	}
	lossVals, err := perRun("loss", *loss, n, parseFloat)
	if err != nil {
		return fail(err)
	}
	lbVals, err := perRun("lossburst", *lossB, n, strconv.ParseBool)
	if err != nil {
		return fail(err)
	}
	lrVals, err := perRun("lossretries", *lossR, n, strconv.Atoi)
	if err != nil {
		return fail(err)
	}
	bkVals, err := perRun("batchkernel", *batchK, n, strconv.Atoi)
	if err != nil {
		return fail(err)
	}
	qVals, err := perRun("quant", *quant, n, strconv.ParseBool)
	if err != nil {
		return fail(err)
	}
	ndVals, err := perRun("nodes", *nodesF, n, strconv.Atoi)
	if err != nil {
		return fail(err)
	}
	hvVals, err := perRun("harvest", *harvF, n, parseFloat)
	if err != nil {
		return fail(err)
	}
	hpVals, err := perRun("harvestprofile", *harvP, n, func(s string) (string, error) { return s, nil })
	if err != nil {
		return fail(err)
	}
	if (*killF > 0 || *resumeF) && *ckptF == "" {
		return fail(fmt.Errorf("-killafter/-resume require -checkpoint <path>"))
	}
	ckpt := zeiot.CheckpointConfig{Path: *ckptF, KillAfterBatches: *killF, Resume: *resumeF}
	if err := checkpointScope(selected, ckpt); err != nil {
		return fail(err)
	}
	var mods []string
	if *modsF != "" {
		for _, m := range strings.Split(*modsF, ",") {
			mods = append(mods, strings.TrimSpace(m))
		}
	}
	return runSelected(selected, *seed, *parallel, *jsonOut, *timings, *metrics, *metOut, twVals, scVals, rpVals, lossVals, lbVals, lrVals, bkVals, qVals, ndVals, hvVals, hpVals, mods, ckpt)
}

func parseFloat(s string) (float64, error) { return strconv.ParseFloat(s, 64) }

// checkpointOwners is the ownership rule for -checkpoint/-killafter/-resume:
// the experiments whose Run reads RunConfig.Checkpoint. Keep it in sync with
// the engine (today only e17's intermittent-power runtime checkpoints).
var checkpointOwners = map[string]bool{"e17": true}

// checkpointScope validates the checkpoint flags against the -e selection.
// Unlike -nodes and -modalities — per-value knobs whose non-owning
// experiments ignore them harmlessly — a checkpoint run is stateful: it
// writes and consumes one file and may deliberately exit nonzero mid-run.
// Broadcasting it to every -e entry (the historical behaviour) handed
// non-owning experiments a config they silently dropped and let two
// checkpoint runs under -parallel contend on one file, so a non-zero
// checkpoint config requires exactly one selected experiment, and that
// experiment must own the kill/resume flow. The zero config always passes.
func checkpointScope(selected []zeiot.Experiment, ckpt zeiot.CheckpointConfig) error {
	if ckpt == (zeiot.CheckpointConfig{}) {
		return nil
	}
	if len(selected) != 1 {
		ids := make([]string, len(selected))
		for i, e := range selected {
			ids[i] = e.ID
		}
		return fmt.Errorf("-checkpoint/-killafter/-resume drive a single experiment's kill/resume flow, but %d experiments are selected (%s); pass -e with exactly one",
			len(selected), strings.Join(ids, ","))
	}
	if !checkpointOwners[selected[0].ID] {
		return fmt.Errorf("-checkpoint: %s does not own a kill/resume flow (checkpoint-owning experiments: e17)", selected[0].ID)
	}
	return nil
}

func runSelected(selected []zeiot.Experiment, seed uint64, parallel int, jsonOut, timings, metrics bool, metricsOut string,
	twVals []int, scVals []float64, rpVals []int, lossVals []float64, lbVals []bool, lrVals []int, bkVals []int, qVals []bool, ndVals []int,
	hvVals []float64, hpVals []string, mods []string, ckpt zeiot.CheckpointConfig) int {

	// Loss options explicitly passed while every run has -loss 0 would be
	// silently dead; surface them so RunConfig.Validate rejects the combination.
	var lossBurstSet, lossRetriesSet bool
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "lossburst":
			lossBurstSet = true
		case "lossretries":
			lossRetriesSet = true
		}
	})
	anyLoss := false
	for _, v := range lossVals {
		if v > 0 {
			anyLoss = true
		}
	}

	// One registry per experiment so concurrent runs never interleave their
	// metrics and the Prometheus export can prefix each block by id.
	collect := metrics || metricsOut != ""
	regs := make([]*obs.Registry, len(selected))

	cfgs := make([]*zeiot.RunConfig, len(selected))
	for i := range selected {
		rc := zeiot.DefaultRunConfig()
		rc.Seed = seed
		if collect {
			regs[i] = obs.NewRegistry()
			rc.Recorder = regs[i]
		}
		rc.TrainWorkers = twVals[i]
		rc.SampleScale = scVals[i]
		rc.Repeats = rpVals[i]
		rc.BatchKernel = bkVals[i]
		rc.Quantize = qVals[i]
		rc.Nodes = ndVals[i]
		rc.Harvest = zeiot.HarvestConfig{PowerScale: hvVals[i], Profile: hpVals[i]}
		// Ownership rule: the checkpoint config reaches only the experiments
		// that own a kill/resume flow. checkpointScope already rejected any
		// selection this gate would silently drop it from.
		if checkpointOwners[selected[i].ID] {
			rc.Checkpoint = ckpt
		}
		rc.Modalities = mods
		if lossVals[i] > 0 {
			lc := zeiot.DefaultLossConfig()
			lc.Enabled = true
			lc.DropProb = lossVals[i]
			lc.Burst = lbVals[i]
			lc.MaxRetries = lrVals[i]
			rc.Loss = lc
		} else if !anyLoss {
			if lossBurstSet {
				rc.Loss.Burst = lbVals[i]
			}
			if lossRetriesSet {
				rc.Loss.MaxRetries = lrVals[i]
			}
			rc.Loss.DropProb = lossVals[i]
		}
		if err := rc.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "zeiotbench: %s: %v\n", selected[i].ID, err)
			return 2
		}
		cfgs[i] = rc
	}

	workers := parallel
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(selected) {
		workers = len(selected)
	}

	// Each run owns its RunConfig and derives every rng stream from the root
	// seed, so running experiments concurrently — even with different
	// configs — cannot change any result, only the wall clock. Results are
	// collected per index and printed in order.
	ctx := context.Background()
	results := make([]*zeiot.Result, len(selected))
	durations := make([]time.Duration, len(selected))
	errs := make([]error, len(selected))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, e := range selected {
		wg.Add(1)
		go func(i int, e zeiot.Experiment) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			start := time.Now()
			results[i], errs[i] = e.Run(ctx, cfgs[i])
			durations[i] = time.Since(start)
		}(i, e)
	}
	wg.Wait()

	failed := 0
	var jsonResults []*zeiot.Result
	for i, e := range selected {
		if errs[i] != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, errs[i])
			failed++
			continue
		}
		// Timings are the one nondeterministic Result field; strip them
		// unless asked so -json output diffs byte-for-byte across runs. The
		// metrics block likewise stays out of -json unless -metrics, so
		// -metrics-out alone leaves the JSON identical to an uninstrumented
		// run (the golden-diff property ci.sh checks).
		if !timings {
			results[i].Timings = nil
		}
		if !metrics {
			results[i].Metrics = nil
		}
		if jsonOut {
			jsonResults = append(jsonResults, results[i])
			continue
		}
		if _, err := results[i].WriteTo(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("(%s in %s%s)\n\n", e.ID, durations[i].Round(time.Millisecond), stageSummary(results[i].Timings))
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonResults); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if metricsOut != "" {
		if err := writeMetrics(metricsOut, selected, regs, errs); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if failed > 0 {
		return 1
	}
	return 0
}

// writeMetrics exports every successful experiment's registry as Prometheus
// text, each block prefixed zeiot_<id>_, in -e order.
func writeMetrics(path string, selected []zeiot.Experiment, regs []*obs.Registry, errs []error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	for i, e := range selected {
		if errs[i] != nil || regs[i] == nil {
			continue
		}
		if err := regs[i].Snapshot().WritePrometheus(f, "zeiot_"+obs.SanitizeName(e.ID)+"_"); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

// stageSummary renders per-stage timings as "; dataset 12ms, train 340ms"
// for the table footer, or "" when timings were stripped.
func stageSummary(t zeiot.Timings) string {
	if len(t) == 0 {
		return ""
	}
	var parts []string
	for _, s := range t.Stages() {
		if s == zeiot.StageTotal {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s %s", s, t[s].Round(time.Millisecond)))
	}
	if len(parts) == 0 {
		return ""
	}
	return "; " + strings.Join(parts, ", ")
}
