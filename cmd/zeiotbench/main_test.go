package main

import (
	"strconv"
	"strings"
	"testing"

	"zeiot"
)

func experiments(t *testing.T, ids ...string) []zeiot.Experiment {
	t.Helper()
	out := make([]zeiot.Experiment, len(ids))
	for i, id := range ids {
		e, err := zeiot.FindExperiment(id)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = e
	}
	return out
}

// TestCheckpointScope is the regression test for the checkpoint broadcast
// bug: -checkpoint/-killafter/-resume used to be applied to every -e entry,
// handing non-owning experiments a checkpoint config and letting parallel
// runs contend on one checkpoint file. The scope rule rejects both.
func TestCheckpointScope(t *testing.T) {
	resume := zeiot.CheckpointConfig{Path: "f.ck", Resume: true}
	kill := zeiot.CheckpointConfig{Path: "f.ck", KillAfterBatches: 10}

	// The zero config passes for any selection — no checkpoint flow requested.
	for _, sel := range [][]string{{"e17"}, {"e1", "e17"}, {"e1", "e2", "e3"}} {
		if err := checkpointScope(experiments(t, sel...), zeiot.CheckpointConfig{}); err != nil {
			t.Errorf("zero config with -e %v rejected: %v", sel, err)
		}
	}

	// The owner alone passes, for both halves of the kill/resume flow.
	for _, ckpt := range []zeiot.CheckpointConfig{resume, kill} {
		if err := checkpointScope(experiments(t, "e17"), ckpt); err != nil {
			t.Errorf("e17 with %+v rejected: %v", ckpt, err)
		}
	}

	// The broadcast case: multiple experiments selected. This is the exact
	// invocation from the bug report (-e e1,e17 -checkpoint f.ck -resume).
	err := checkpointScope(experiments(t, "e1", "e17"), resume)
	if err == nil {
		t.Fatal("multi-experiment checkpoint run accepted")
	}
	if !strings.Contains(err.Error(), "e1,e17") {
		t.Errorf("error %q does not name the offending selection", err)
	}

	// A single non-owning experiment: the config would be silently dropped,
	// so it is rejected, naming the owner set.
	err = checkpointScope(experiments(t, "e1"), kill)
	if err == nil {
		t.Fatal("non-owner checkpoint run accepted")
	}
	if !strings.Contains(err.Error(), "e17") {
		t.Errorf("error %q does not name the checkpoint owners", err)
	}
}

// TestCheckpointOwnersMatchEngine pins the CLI's owner set to the engine:
// every listed owner must be a registered experiment.
func TestCheckpointOwnersMatchEngine(t *testing.T) {
	for id := range checkpointOwners {
		if _, err := zeiot.FindExperiment(id); err != nil {
			t.Errorf("checkpointOwners lists %s: %v", id, err)
		}
	}
}

// TestPerRun covers the per-run flag parser the comma-list scoping relies
// on: broadcast, exact-length lists, and length-mismatch rejection.
func TestPerRun(t *testing.T) {
	got, err := perRun("w", "3", 4, strconv.Atoi)
	if err != nil || len(got) != 4 || got[0] != 3 || got[3] != 3 {
		t.Errorf("broadcast: %v, %v", got, err)
	}
	got, err = perRun("w", "1, 2,3", 3, strconv.Atoi)
	if err != nil || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("list: %v, %v", got, err)
	}
	if _, err = perRun("w", "1,2", 3, strconv.Atoi); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err = perRun("w", "1,x,3", 3, strconv.Atoi); err == nil {
		t.Error("unparseable entry accepted")
	}
}
