// Quickstart: deploy a small CNN over a simulated sensor grid with
// MicroDeep, train it on a toy spatial task, and inspect accuracy and
// per-node communication cost.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"zeiot"
	"zeiot/internal/cnn"
	"zeiot/internal/microdeep"
	"zeiot/internal/rng"
	"zeiot/internal/tensor"
	"zeiot/internal/wsn"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	root := rng.New(7)

	// 1. A toy task: is the bright blob in the left or right half of an
	// 8×8 sensor field?
	var samples []cnn.Sample
	for i := 0; i < 400; i++ {
		in := tensor.New(1, 8, 8)
		label := i % 2
		x := root.Intn(4)
		if label == 1 {
			x += 4
		}
		in.Set(1, 0, root.Intn(8), x)
		for j := 0; j < 4; j++ {
			in.Set(0.3*root.Norm(), 0, root.Intn(8), root.Intn(8))
		}
		samples = append(samples, cnn.Sample{Input: in, Label: label})
	}
	train, test := samples[:300], samples[300:]

	// 2. A CNN sized for tiny IoT devices.
	s := root.Split("net")
	net := cnn.NewNetwork([]int{1, 8, 8},
		cnn.NewConv2D(1, 4, 3, 3, 1, 1, s.Split("conv")),
		cnn.NewReLU(),
		cnn.NewMaxPool2D(2, 2),
		cnn.NewFlatten(),
		cnn.NewDense(4*4*4, 2, s.Split("dense")),
	)

	// 3. An 8×8 sensor grid, one node per sensing cell, and a MicroDeep
	// deployment using the balanced heuristic assignment.
	grid := wsn.NewGrid(8, 8, 1)
	model, err := microdeep.Build(net, grid, microdeep.StrategyBalanced)
	if err != nil {
		return err
	}
	fmt.Printf("unit graph: %d sites, %d units over %d nodes\n",
		model.Graph.NumSites(), model.Graph.NumUnits(), grid.NumNodes())

	// 4. Local weight updates: no kernel synchronization traffic.
	model.EnableLocalUpdate()
	model.Fit(train, 6, 16, cnn.NewSGD(0.05, 0.9), root.Split("fit"))
	fmt.Printf("test accuracy: %.1f%%\n", 100*model.Evaluate(test))

	// 5. The distributed forward pass is exactly the centralized one.
	out, err := model.ForwardDistributed(test[0].Input)
	if err != nil {
		return err
	}
	central := model.Net.Forward(test[0].Input)
	fmt.Printf("distributed == centralized: %v\n", tensor.Equal(out, central, 1e-9))

	// 6. Communication cost per sample (the paper's Fig. 10 metric).
	cost, err := model.CostPerSample(false)
	if err != nil {
		return err
	}
	fmt.Printf("comm cost/sample: max %d, mean %.1f, total %d scalars\n",
		cost.Max, cost.Mean, cost.Total)

	// 7. The paper's artifacts run through the same engine as
	// cmd/zeiotbench: pick one from the registry and run it under an
	// explicit per-run config.
	e, err := zeiot.FindExperiment("e7")
	if err != nil {
		return err
	}
	res, err := e.Run(context.Background(), zeiot.DefaultRunConfig())
	if err != nil {
		return err
	}
	fmt.Printf("registry %s: wifi/backscatter energy ratio %.0fx, usable range %.0f m (in %s)\n",
		res.ID, res.Summary["wifi_over_backscatter"], res.Summary["usable_range_m"],
		res.Timings[zeiot.StageTotal].Round(time.Millisecond))
	return nil
}
