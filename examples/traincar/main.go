// Traincar demonstrates the §IV.B wireless-sensing estimators: car-level
// positioning and congestion estimation on a simulated commuter train, and
// room-scale people counting on an already-deployed 802.15.4 WSN.
//
//	go run ./examples/traincar
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"zeiot"
	"zeiot/internal/congestion"
	"zeiot/internal/rng"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	root := rng.New(21)

	// --- Train: calibrate from simulated rides, then estimate one ride.
	cfg := congestion.DefaultTrainConfig()
	est, err := congestion.Calibrate(cfg, 10, root.Split("cal"))
	if err != nil {
		return err
	}
	perCar := []int{5, 31, 14, 40, 8, 22}
	scenario, err := congestion.Generate(cfg, perCar, root.Split("ride"))
	if err != nil {
		return err
	}
	meas := congestion.Measure(scenario, root.Split("measure"))
	cars, rel := est.Positions(meas)
	correct := 0
	for u := range cars {
		if cars[u] == scenario.Car[u] {
			correct++
		}
	}
	fmt.Printf("train: positioned %d/%d passengers in the right car (%.0f%%)\n",
		correct, len(cars), 100*float64(correct)/float64(len(cars)))
	levels := est.CarCongestion(meas, cars, rel)
	fmt.Println("car  passengers  truth    estimate")
	for c, lvl := range levels {
		fmt.Printf("%3d  %10d  %-7v  %-7v\n", c+1, perCar[c], cfg.LevelFor(perCar[c]), lvl)
	}

	// --- Room: count people from synchronized RSSI sweeps.
	roomCfg := congestion.DefaultRoomConfig()
	room, err := congestion.TrainRoomEstimator(roomCfg, 40, root.Split("room"))
	if err != nil {
		return err
	}
	fmt.Println("room: true vs estimated occupancy")
	for _, n := range []int{0, 3, 6, 9} {
		s := congestion.GenerateRoomSample(roomCfg, room.Network(), n, root.Split(fmt.Sprintf("probe-%d", n)))
		fmt.Printf("  %d people -> estimated %d\n", n, room.Count(s.Features))
	}

	// The registry's e3 scores the same estimators across many rides; run
	// it through the experiment engine with the paper's defaults.
	e, err := zeiot.FindExperiment("e3")
	if err != nil {
		return err
	}
	res, err := e.Run(context.Background(), zeiot.DefaultRunConfig())
	if err != nil {
		return err
	}
	fmt.Printf("registry e3: positioning %.0f%%, congestion F1 %.2f (in %s)\n",
		100*res.Summary["positioning_acc"], res.Summary["congestion_f1"],
		res.Timings[zeiot.StageTotal].Round(time.Millisecond))
	return nil
}
