// Designer walks the paper's §V design-support loop end to end: from a
// floor plan with obstacle walls, derive the device network, deploy a
// distributed CNN on it, generate the collision-free TDMA collection
// schedule, and check whether the required collection cycle is feasible on
// harvested energy alone.
//
//	go run ./examples/designer
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"zeiot"
	"zeiot/internal/cnn"
	"zeiot/internal/geom"
	"zeiot/internal/microdeep"
	"zeiot/internal/radio"
	"zeiot/internal/rng"
	"zeiot/internal/schedule"
	"zeiot/internal/wsn"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Floor plan: an 8×6 grid of sensing positions and one partition
	// wall with a doorway.
	var positions []geom.Point
	for r := 0; r < 6; r++ {
		for c := 0; c < 8; c++ {
			positions = append(positions, geom.Point{X: float64(c) * 2, Y: float64(r) * 2})
		}
	}
	plan := wsn.DefaultRadioPlan()
	plan.Walls = []wsn.Wall{
		{A: geom.Point{X: 7, Y: -1}, B: geom.Point{X: 7, Y: 6.5}, LossDB: 25}, // partition
		// Doorway gap between y=6.5 and y=11.
	}
	net := wsn.NewFromRadioPlan(positions, plan)
	fmt.Printf("floor plan: %d nodes, connected=%v\n", net.NumNodes(), net.Connected())

	// 2. Deploy a CNN over the field with the balanced heuristic.
	s := rng.New(1)
	cnnNet := cnn.NewNetwork([]int{1, 6, 8},
		cnn.NewConv2D(1, 4, 3, 3, 1, 1, s.Split("c")),
		cnn.NewReLU(),
		cnn.NewMaxPool2D(2, 2),
		cnn.NewFlatten(),
		cnn.NewDense(4*3*4, 8, s.Split("d1")),
		cnn.NewReLU(),
		cnn.NewDense(8, 2, s.Split("d2")),
	)
	model, err := microdeep.Build(cnnNet, net, microdeep.StrategyBalanced)
	if err != nil {
		return err
	}
	cost, err := model.CostPerSample(false)
	if err != nil {
		return err
	}
	fmt.Printf("deployment: %d units, max %d scalars/sample on the busiest node\n",
		model.Graph.NumUnits(), cost.Max)

	// 3. Generate the TDMA collection schedule (2 channels) and validate.
	transfers, err := microdeep.Plan(model.Graph, model.Assign, net)
	if err != nil {
		return err
	}
	opts := schedule.Options{Channels: 2, InterferenceHops: 1}
	sched, err := schedule.Build(transfers, net, opts)
	if err != nil {
		return err
	}
	if err := sched.Validate(transfers, net, opts); err != nil {
		return err
	}
	fmt.Printf("schedule: %d transfers in %d slots on %d channels (collision-free: validated)\n",
		len(sched.Entries), sched.Slots, sched.Channels)

	// 4. Feasibility of the required collection cycle.
	const slotSec = 0.004 // 4 ms slots (ZigBee-class frames)
	for _, requiredHz := range []float64{0.2, 1, 5} {
		rep := sched.Feasibility(slotSec, requiredHz)
		fmt.Printf("cycle %4.1f Hz: round %.0f ms, max rate %.1f Hz, feasible=%v\n",
			requiredHz, rep.RoundSec*1000, rep.MaxRateHz, rep.CycleOK)
	}

	// 5. Energy check: can the busiest node sustain 1 Hz on 100 µW
	// harvested power, per radio technology?
	const bitsPerScalar = 32
	fmt.Println("energy-sustainable rate at the busiest node (100 µW harvest):")
	for _, r := range radio.StandardRadios() {
		perSampleJ := float64(cost.Max*bitsPerScalar) * r.JoulesPerBit()
		fmt.Printf("  %-12s %8.2f Hz\n", r.Tech, 100e-6/perSampleJ)
	}

	// The registry's e11 runs the same feasibility loop on the paper's
	// battery-free deployment; run it through the experiment engine.
	e, err := zeiot.FindExperiment("e11")
	if err != nil {
		return err
	}
	res, err := e.Run(context.Background(), zeiot.DefaultRunConfig())
	if err != nil {
		return err
	}
	fmt.Printf("registry e11: backscatter sustains %.2f Hz (%.0fx over WiFi) (in %s)\n",
		res.Summary["rate_backscatter"], res.Summary["backscatter_speedup"],
		res.Timings[zeiot.StageTotal].Round(time.Millisecond))
	return nil
}
