// Lounge runs the paper's first MicroDeep scenario: thermal discomfort
// detection over a 25×17-cell lounge monitored by 50 sensor nodes,
// comparing a centralized standard CNN deployment with the distributed
// MicroDeep one.
//
//	go run ./examples/lounge
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"zeiot"
	"zeiot/internal/cnn"
	"zeiot/internal/dataset"
	"zeiot/internal/microdeep"
	"zeiot/internal/rng"
	"zeiot/internal/wsn"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func buildNet(s *rng.Stream) *cnn.Network {
	return cnn.NewNetwork([]int{1, 17, 25},
		cnn.NewConv2D(1, 4, 3, 3, 1, 1, s.Split("c")),
		cnn.NewReLU(),
		cnn.NewMaxPool2D(3, 3),
		cnn.NewFlatten(),
		cnn.NewDense(4*5*8, 16, s.Split("d1")),
		cnn.NewReLU(),
		cnn.NewDense(16, 2, s.Split("d2")),
	)
}

func run() error {
	root := rng.New(3)
	cfg := dataset.DefaultLoungeConfig()
	cfg.Samples = 600
	cfg.NoiseC = 0.6
	samples, err := dataset.GenerateLounge(cfg)
	if err != nil {
		return err
	}
	train, test := samples[:450], samples[450:]
	fmt.Printf("lounge: %d snapshots of a %dx%d cell field\n", len(samples), cfg.Rows, cfg.Cols)

	// Centralized standard CNN.
	sStd := root.Split("std")
	std := buildNet(sStd)
	std.Fit(train, 6, 16, cnn.NewSGD(0.02, 0.9), sStd.Split("fit"))
	fmt.Printf("standard CNN accuracy:  %.1f%%\n", 100*std.Evaluate(test))

	// MicroDeep over 50 nodes.
	grid := wsn.NewGrid(5, 10, 1)
	sMD := root.Split("md")
	model, err := microdeep.Build(buildNet(sMD), grid, microdeep.StrategyBalanced)
	if err != nil {
		return err
	}
	model.EnableLocalUpdate()
	model.Fit(train, 10, 16, cnn.NewSGD(0.01, 0.9), sMD.Split("fit"))
	fmt.Printf("MicroDeep accuracy:     %.1f%%\n", 100*model.Evaluate(test))

	// Peak traffic: distributed sensing vs shipping raw readings to a sink.
	grid.ResetCounters()
	if _, err := microdeep.ChargeForward(model.Graph, model.Assign, grid); err != nil {
		return err
	}
	fwd := microdeep.Report(grid)
	grid.ResetCounters()
	if _, err := microdeep.ChargeCentralized(model.Graph, grid, grid.Live()[25]); err != nil {
		return err
	}
	central := microdeep.Report(grid)
	fmt.Printf("peak traffic/sample:    MicroDeep %d vs centralized %d scalars (%.0f%%)\n",
		fwd.Max, central.Max, 100*float64(fwd.Max)/float64(central.Max))

	// The registry's e2 is this comparison measured the paper's way —
	// normally averaged over three training seeds. A quarter-size dataset
	// and a single repeat make it a quick look instead of the full run.
	rc := zeiot.DefaultRunConfig()
	rc.SampleScale = 0.25
	rc.Repeats = 1
	e, err := zeiot.FindExperiment("e2")
	if err != nil {
		return err
	}
	res, err := e.Run(context.Background(), rc)
	if err != nil {
		return err
	}
	fmt.Printf("registry e2 (quarter-size, 1 repeat): standard %.1f%% vs MicroDeep %.1f%%, peak ratio %.2f (total %s)\n",
		100*res.Summary["acc_standard"], 100*res.Summary["acc_microdeep"],
		res.Summary["peak_ratio"], res.Timings[zeiot.StageTotal].Round(time.Millisecond))
	return nil
}
