// Elderly walks the paper's use case (i): monitoring elderly people's
// sleep and context changes at a care facility with zero-energy devices —
// overnight vital signs through a chest RFID tag array (RF-ECG, ref [58])
// and daytime fall detection through a film-type IR sensor array running
// the MicroDeep CNN.
//
//	go run ./examples/elderly
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"zeiot"
	"zeiot/internal/cnn"
	"zeiot/internal/dataset"
	"zeiot/internal/microdeep"
	"zeiot/internal/rng"
	"zeiot/internal/vitals"
	"zeiot/internal/wsn"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	root := rng.New(8)

	// --- Night: vital monitoring through the mattress-side reader.
	cfg := vitals.DefaultConfig()
	fmt.Println("overnight vitals (30 s windows):")
	for hour, subject := range []vitals.Subject{
		{HeartHz: 1.0, BreathHz: 0.22, HeartMM: 0.5, BreathMM: 4, Jitter: 0.03},  // settling
		{HeartHz: 0.9, BreathHz: 0.2, HeartMM: 0.5, BreathMM: 4.5, Jitter: 0.02}, // deep sleep
		{HeartHz: 1.2, BreathHz: 0.3, HeartMM: 0.5, BreathMM: 3.5, Jitter: 0.05}, // restless
	} {
		phases := vitals.Capture(cfg, subject, root.Split("window"))
		heart, breath, err := vitals.Estimate(cfg, phases)
		if err != nil {
			return err
		}
		fmt.Printf("  window %d: %3.0f bpm, %4.1f breaths/min (truth %3.0f / %4.1f)\n",
			hour+1, vitals.BPM(heart), vitals.BPM(breath),
			vitals.BPM(subject.HeartHz), vitals.BPM(subject.BreathHz))
	}

	// --- Day: fall detection on the corridor's IR array.
	gait := dataset.DefaultGaitConfig()
	gait.Streams = 30
	gait.NoiseLevel = 0.4
	streams, err := dataset.GenerateGaitStreams(gait)
	if err != nil {
		return err
	}
	samples := dataset.BalancedWindows(gait, streams, 1.0, root.Split("bal"))
	cut := len(samples) * 3 / 4
	s := root.Split("net")
	net := cnn.NewNetwork([]int{gait.WindowFrames, gait.Rows, gait.Cols},
		cnn.NewConv2D(gait.WindowFrames, 6, 3, 3, 1, 1, s.Split("c")),
		cnn.NewReLU(),
		cnn.NewMaxPool2D(2, 2),
		cnn.NewFlatten(),
		cnn.NewDense(6*4*4, 16, s.Split("d1")),
		cnn.NewReLU(),
		cnn.NewDense(16, 2, s.Split("d2")),
	)
	grid := wsn.NewGrid(gait.Rows, gait.Cols, 0.3)
	model, err := microdeep.Build(net, grid, microdeep.StrategyBalanced)
	if err != nil {
		return err
	}
	model.EnableLocalUpdate()
	model.Fit(samples[:cut], 8, 16, cnn.NewSGD(0.02, 0.9), root.Split("fit"))
	fmt.Printf("corridor fall detection accuracy: %.1f%% on %d held-out windows\n",
		100*model.Evaluate(samples[cut:]), len(samples)-cut)

	// Alarm semantics: a detected fall window raises the nurse call.
	falls := 0
	for _, w := range samples[cut:] {
		if w.Label == 1 && model.Net.Predict(w.Input) == 1 {
			falls++
		}
	}
	fmt.Printf("falls caught: %d alarms raised\n", falls)

	// The registry's e15 scores the same vital-sign estimator across a
	// subject sweep; run it through the experiment engine.
	e, err := zeiot.FindExperiment("e15")
	if err != nil {
		return err
	}
	res, err := e.Run(context.Background(), zeiot.DefaultRunConfig())
	if err != nil {
		return err
	}
	fmt.Printf("registry e15: heart err %.1f bpm, breath err %.1f bpm over %.0f windows (in %s)\n",
		res.Summary["heart_err_bpm"], res.Summary["breath_err_bpm"], res.Summary["windows_ok"],
		res.Timings[zeiot.StageTotal].Round(time.Millisecond))
	return nil
}
