// Backscatterlan demonstrates the §IV.A coexistence protocol: an 802.11
// channel shared between WLAN stations and zero-energy backscatter IoT
// devices, under the proposed cycle-registered MAC and the uncoordinated
// baseline — plus the zero-energy link budget that motivates it all.
//
//	go run ./examples/backscatterlan
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"zeiot"
	"zeiot/internal/backscatter"
	"zeiot/internal/geom"
	"zeiot/internal/mac"
	"zeiot/internal/radio"
	"zeiot/internal/rng"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Why backscatter: energy per bit across radio technologies.
	fmt.Println("energy per bit:")
	for _, r := range radio.StandardRadios() {
		fmt.Printf("  %-12s %.3g J/bit\n", r.Tech, r.JoulesPerBit())
	}

	// 2. A tag on the product channel: delivery over distance.
	link := radio.BackscatterLink{
		Model:       radio.LogDistance{RefLossDB: 40, RefDist: 1, Exponent: 2.0, ShadowSigmaDB: 3},
		TagLossDB:   8,
		SourceTxDBm: 30,
	}
	tag := backscatter.NewTag(0, geom.Point{}, link)
	noise := radio.ThermalNoiseDBm(250e3, 6)
	stream := rng.New(1)
	fmt.Println("backscatter delivery vs distance (256-bit packets):")
	for _, d := range []float64{2, 8, 16, 32} {
		ok := 0
		for i := 0; i < 200; i++ {
			if tag.TransmitPacket(d, d, d, 256, noise, 80, stream).Delivered {
				ok++
			}
		}
		fmt.Printf("  %4.0f m: %5.1f%%\n", d, float64(ok)/2)
	}

	// 3. An intermittent (battery-free) device: harvested µW → duty cycle.
	h, err := backscatter.NewHarvester(1e-3, 1e-4, 0, 20e-6)
	if err != nil {
		return err
	}
	dev := &backscatter.IntermittentDevice{Harvester: h, TaskEnergyJ: 8e-5}
	ran := dev.Step(time.Minute, 10*time.Millisecond)
	fmt.Printf("intermittent device: %d sense-and-send cycles in one minute on 20 µW harvest\n", ran)

	// 4. MAC coexistence: the proposed scheduler vs uncoordinated riders.
	fmt.Println("coexistence over 10 s, 20 devices, 100 ms cycles, 50 WLAN frames/s:")
	for _, mode := range []mac.Mode{mac.ModeScheduled, mac.ModeAloha} {
		cfg := mac.DefaultConfig()
		cfg.Mode = mode
		cfg.NumDevices = 20
		cfg.WLANRate = 50
		cfg.Seed = 2
		m, err := mac.Run(cfg, 10*time.Second)
		if err != nil {
			return err
		}
		fmt.Printf("  %-10s backscatter delivery %5.1f%%  collisions %3d  wlan retries %3d  dummies %d\n",
			mode, 100*m.BSDeliveryRatio(), m.BSCollided, m.WLANRetries, m.DummyFrames)
	}

	// The registry's e6 sweeps WLAN load for the same coexistence
	// comparison; a half-length simulation keeps this a quick look.
	rc := zeiot.DefaultRunConfig()
	rc.SampleScale = 0.5
	e, err := zeiot.FindExperiment("e6")
	if err != nil {
		return err
	}
	res, err := e.Run(context.Background(), rc)
	if err != nil {
		return err
	}
	fmt.Printf("registry e6 (half-length): at 5 WLAN f/s, scheduled delivers %.1f%% vs aloha %.1f%% (in %s)\n",
		100*res.Summary["delivery_scheduled_load5"], 100*res.Summary["delivery_aloha_load5"],
		res.Timings[zeiot.StageTotal].Round(time.Millisecond))
	return nil
}
