// Sociogram demonstrates §III.C use case (iv): estimating the friendship
// graph of a kindergarten group from tag IDs collected by area-limited
// base stations, and surfacing isolated children.
//
//	go run ./examples/sociogram
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"time"

	"zeiot"
	"zeiot/internal/rng"
	"zeiot/internal/sociogram"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	root := rng.New(5)
	community := sociogram.CommunityConfig{Children: 24, CliqueSize: 4, IsolatedCount: 2}
	truth, isolated, err := sociogram.GenerateFriendships(community, root.Split("gen"))
	if err != nil {
		return err
	}
	fmt.Printf("%d children, %d ground-truth friendships, isolated: %v\n",
		community.Children, truth.Edges(), isolated)

	obs := sociogram.DefaultObservationConfig()
	logs, err := sociogram.Simulate(truth, obs, root.Split("sim"))
	if err != nil {
		return err
	}
	fmt.Printf("collected %d base-station sightings over %d sessions in %d areas\n",
		len(logs), obs.Sessions, obs.Areas)

	inferred := sociogram.Infer(community.Children, obs.Sessions, logs)
	strong := inferred.Threshold(0.4)
	score := sociogram.Evaluate(truth, strong)
	fmt.Printf("inferred sociogram: precision %.2f, recall %.2f, F1 %.2f\n",
		score.Precision, score.Recall, score.F1)

	fmt.Println("strongest ties per child:")
	for c := 0; c < community.Children; c++ {
		friends := strong.Friends(c)
		if len(friends) > 3 {
			friends = friends[:3]
		}
		fmt.Printf("  child %2d -> %v\n", c, friends)
	}

	flagged := sociogram.DetectIsolated(inferred, 0.6)
	sort.Ints(flagged)
	fmt.Printf("flagged as isolated: %v (truth %v)\n", flagged, isolated)

	// The registry's e9 sweeps observation time on a larger group; run it
	// through the experiment engine.
	e, err := zeiot.FindExperiment("e9")
	if err != nil {
		return err
	}
	res, err := e.Run(context.Background(), zeiot.DefaultRunConfig())
	if err != nil {
		return err
	}
	fmt.Printf("registry e9: F1 %.2f after 200 sessions, %.0f/%.0f isolated found (in %s)\n",
		res.Summary["f1_200"], res.Summary["isolated_hits_200"], res.Summary["isolated_total"],
		res.Timings[zeiot.StageTotal].Round(time.Millisecond))
	return nil
}
