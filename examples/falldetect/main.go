// Falldetect runs the paper's second MicroDeep scenario end to end:
// synthetic film-type IR-sensor gait streams, 2-second windows, and a
// 1-conv/1-pool/2-FC CNN distributed over the sensor array, detecting
// falls of (simulated) elderly subjects.
//
//	go run ./examples/falldetect
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"zeiot"
	"zeiot/internal/cnn"
	"zeiot/internal/dataset"
	"zeiot/internal/microdeep"
	"zeiot/internal/ml"
	"zeiot/internal/rng"
	"zeiot/internal/wsn"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	root := rng.New(11)
	cfg := dataset.DefaultGaitConfig()
	cfg.Streams = 40
	cfg.NoiseLevel = 0.4
	streams, err := dataset.GenerateGaitStreams(cfg)
	if err != nil {
		return err
	}
	falls := 0
	for _, gs := range streams {
		if gs.FallAt >= 0 {
			falls++
		}
	}
	fmt.Printf("recorded %d streams (%d with falls), %d frames each\n",
		len(streams), falls, cfg.FramesPerStream)

	samples := dataset.BalancedWindows(cfg, streams, 1.0, root.Split("balance"))
	cut := len(samples) * 3 / 4
	train, test := samples[:cut], samples[cut:]
	fmt.Printf("windows: %d train, %d test (%d-frame, %dx%d pixels)\n",
		len(train), len(test), cfg.WindowFrames, cfg.Rows, cfg.Cols)

	// The paper's CNN: one conv, one pool, two fully-connected layers,
	// deployed over the IR array itself.
	s := root.Split("net")
	net := cnn.NewNetwork([]int{cfg.WindowFrames, cfg.Rows, cfg.Cols},
		cnn.NewConv2D(cfg.WindowFrames, 6, 3, 3, 1, 1, s.Split("c")),
		cnn.NewReLU(),
		cnn.NewMaxPool2D(2, 2),
		cnn.NewFlatten(),
		cnn.NewDense(6*4*4, 16, s.Split("d1")),
		cnn.NewReLU(),
		cnn.NewDense(16, 2, s.Split("d2")),
	)
	grid := wsn.NewGrid(cfg.Rows, cfg.Cols, 0.3)
	model, err := microdeep.Build(net, grid, microdeep.StrategyBalanced)
	if err != nil {
		return err
	}
	model.EnableLocalUpdate()
	model.Fit(train, 8, 16, cnn.NewSGD(0.02, 0.9), root.Split("fit"))

	cm := ml.NewConfusionMatrix(2)
	for _, sample := range test {
		cm.Add(sample.Label, model.Net.Predict(sample.Input))
	}
	fmt.Printf("fall detection accuracy: %.1f%%  (fall F1 %.3f)\n",
		100*cm.Accuracy(), cm.F1(1))

	cost, err := model.CostPerSample(false)
	if err != nil {
		return err
	}
	fmt.Printf("per-window comm cost: max %d scalars on one node, %d total\n",
		cost.Max, cost.Total)

	// The registry's e1 is this scenario measured the paper's way (optimal
	// vs feasible assignment, Fig. 10). SampleScale 0.5 halves the gait
	// streams for a quick look; scale 1 reproduces the paper run.
	rc := zeiot.DefaultRunConfig()
	rc.SampleScale = 0.5
	e, err := zeiot.FindExperiment("e1")
	if err != nil {
		return err
	}
	res, err := e.Run(context.Background(), rc)
	if err != nil {
		return err
	}
	fmt.Printf("registry e1 (half-size): optimal %.1f%% vs feasible %.1f%%, max cost %.0f vs %.0f (train %s)\n",
		100*res.Summary["acc_optimal"], 100*res.Summary["acc_feasible"],
		res.Summary["max_cost_opt"], res.Summary["max_cost_fea"],
		res.Timings[zeiot.StageTrain].Round(time.Millisecond))
	return nil
}
