package zeiot_test

import (
	"strings"
	"testing"

	"zeiot"
	"zeiot/internal/obs"
)

func mustKey(t *testing.T, exp string, cfg *zeiot.RunConfig) string {
	t.Helper()
	k, err := zeiot.ConfigKey(exp, cfg)
	if err != nil {
		t.Fatalf("ConfigKey(%s): %v", exp, err)
	}
	return k
}

// TestConfigKeySemanticIdentity pins every normalization rule of the
// canonical form: semantically identical configs must share a key, because
// the daemon's result cache serves one config the other's bytes.
func TestConfigKeySemanticIdentity(t *testing.T) {
	base := mustKey(t, "e1", &zeiot.RunConfig{Seed: 1, SampleScale: 1})

	cases := []struct {
		name string
		cfg  *zeiot.RunConfig
	}{
		{"nil config is DefaultRunConfig", nil},
		{"SampleScale 0 normalizes to 1", &zeiot.RunConfig{Seed: 1}},
		{"Harvest.PowerScale 0 normalizes to 1", &zeiot.RunConfig{Seed: 1, Harvest: zeiot.HarvestConfig{PowerScale: 1}}},
		{"Harvest.Profile empty normalizes to mixed", &zeiot.RunConfig{Seed: 1, Harvest: zeiot.HarvestConfig{Profile: "mixed"}}},
		{"Recorder is excluded", &zeiot.RunConfig{Seed: 1, Recorder: obs.NewRegistry()}},
	}
	for _, tc := range cases {
		if got := mustKey(t, "e1", tc.cfg); got != base {
			t.Errorf("%s: key %s != base %s", tc.name, got, base)
		}
	}
}

// TestConfigKeyModalitiesAreASet checks that modality order and duplicates
// never split the cache: beginRun normalizes Modalities to a sorted set, so
// the key hashes the same set.
func TestConfigKeyModalitiesAreASet(t *testing.T) {
	a := mustKey(t, "e18", &zeiot.RunConfig{Seed: 1, Modalities: []string{"har", "gait"}})
	b := mustKey(t, "e18", &zeiot.RunConfig{Seed: 1, Modalities: []string{"gait", "har", "gait"}})
	c := mustKey(t, "e18", &zeiot.RunConfig{Seed: 1, Modalities: []string{"gait", "har"}})
	if a != c || b != c {
		t.Errorf("modality order/duplicates split the key: %s / %s / %s", a, b, c)
	}
	d := mustKey(t, "e18", &zeiot.RunConfig{Seed: 1, Modalities: []string{"gait"}})
	if d == c {
		t.Error("different modality sets share a key")
	}
}

// TestConfigKeyDiscriminates checks that every semantically meaningful knob
// moves the key — a collision here would serve one run another run's bytes.
func TestConfigKeyDiscriminates(t *testing.T) {
	base := mustKey(t, "e1", &zeiot.RunConfig{Seed: 1})
	lossy := zeiot.DefaultLossConfig()
	lossy.Enabled = true
	variants := map[string]*zeiot.RunConfig{
		"seed":        {Seed: 2},
		"workers":     {Seed: 1, TrainWorkers: 4},
		"scale":       {Seed: 1, SampleScale: 0.5},
		"repeats":     {Seed: 1, Repeats: 2},
		"batchkernel": {Seed: 1, BatchKernel: 8},
		"nodes":       {Seed: 1, Nodes: 3000},
		"quantize":    {Seed: 1, Quantize: true},
		"loss":        {Seed: 1, Loss: lossy},
		"harvest":     {Seed: 1, Harvest: zeiot.HarvestConfig{PowerScale: 2}},
		"profile":     {Seed: 1, Harvest: zeiot.HarvestConfig{Profile: "solar"}},
		"checkpoint":  {Seed: 1, Checkpoint: zeiot.CheckpointConfig{Path: "f.ck", KillAfterBatches: 5}},
	}
	seen := map[string]string{base: "base"}
	for name, cfg := range variants {
		k := mustKey(t, "e1", cfg)
		if prev, dup := seen[k]; dup {
			t.Errorf("variant %q collides with %q", name, prev)
		}
		seen[k] = name
	}
	if got := mustKey(t, "e7", &zeiot.RunConfig{Seed: 1}); got == base {
		t.Error("experiment id does not move the key")
	}
}

// TestConfigKeyRejectsInvalid: invalid configs and unknown experiments have
// no meaningful cache key.
func TestConfigKeyRejectsInvalid(t *testing.T) {
	if _, err := zeiot.ConfigKey("e99", &zeiot.RunConfig{Seed: 1}); err == nil {
		t.Error("ConfigKey accepted an unknown experiment")
	}
	if _, err := zeiot.ConfigKey("e1", &zeiot.RunConfig{Seed: 1, TrainWorkers: -1}); err == nil {
		t.Error("ConfigKey accepted an invalid config")
	}
}

// TestCanonicalConfigStable pins the canonical text form itself: it is the
// cache-key preimage, so accidental reformatting would silently invalidate
// every cached result. Bump configKeyVersion when changing it on purpose.
func TestCanonicalConfigStable(t *testing.T) {
	got := zeiot.CanonicalConfig("e1", &zeiot.RunConfig{Seed: 1})
	want := strings.Join([]string{
		"version=v1",
		"experiment=e1",
		"seed=1",
		"trainworkers=0",
		"loss.enabled=false",
		"loss.dropprob=0",
		"loss.burst=false",
		"loss.maxretries=0",
		"samplescale=1",
		"repeats=0",
		"batchkernel=0",
		"nodes=0",
		"quantize=false",
		"harvest.powerscale=1",
		"harvest.profile=mixed",
		`checkpoint.path=""`,
		"checkpoint.killafter=0",
		"checkpoint.resume=false",
		"modalities=",
	}, "\n") + "\n"
	if got != want {
		t.Errorf("canonical form drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
