#!/bin/sh
# ci.sh — the gate every change must pass: build, vet, the full test suite
# under the race detector (the data-parallel training path and the
# concurrent mixed-config runs make the race run load-bearing, not
# optional), and two end-to-end smokes: e1 and e7 at seed 1 must emit
# exactly the checked-in golden JSON, so a determinism regression anywhere
# in the stack fails CI even if no unit test covers it, and a
# mixed-config parallel run — two experiments with different per-run
# worker counts, sample scales, repeats and loss settings concurrently —
# must exit cleanly. The observability smoke checks both halves of the
# metrics contract: collecting metrics leaves the JSON results byte-identical
# to the golden, and the deterministic metric keys (everything not
# walltime_-prefixed) are stable across independent runs.
set -eux

go build ./...
go vet ./...
go test -race ./...

smoke="$(mktemp)"
m1="$(mktemp)"
m2="$(mktemp)"
trap 'rm -f "$smoke" "$m1" "$m2"' EXIT
go run ./cmd/zeiotbench -e e1 -seed 1 -json > "$smoke"
diff -u testdata/e1_seed1.golden.json "$smoke"
go run ./cmd/zeiotbench -e e7 -seed 1 -json > "$smoke"
diff -u testdata/e7_seed1.golden.json "$smoke"

# Mixed-config parallel smoke: per-run flags take comma lists matching -e,
# so differently-configured experiments legally share one -parallel run.
go run ./cmd/zeiotbench -e e1,e7 -parallel 2 -trainworkers 1,4 -samples 0.5,1 -repeats 1,2 -timings > /dev/null

# The satellite bugfix: loss options without -loss must be an explicit
# error (exit 2), not silently ignored.
if go run ./cmd/zeiotbench -e e7 -lossretries 5 > /dev/null 2>&1; then
    echo "zeiotbench accepted -lossretries without -loss" >&2
    exit 1
fi

# Batched-kernel smoke: the im2col/GEMM training path must be bit-identical
# to the serial path, so e1 under -batchkernel 8 must emit exactly the same
# golden JSON as the default run.
go run ./cmd/zeiotbench -e e1 -seed 1 -batchkernel 8 -json > "$smoke"
diff -u testdata/e1_seed1.golden.json "$smoke"

# Quantized-inference smoke: int8 rows are deterministic — two independent
# -quant runs of e13 must agree byte for byte (and must not perturb the
# float rows, which the all-experiments identity above already pins).
go run ./cmd/zeiotbench -e e13 -seed 1 -quant=true -json > "$m1"
go run ./cmd/zeiotbench -e e13 -seed 1 -quant=true -json > "$m2"
diff -u "$m1" "$m2"
grep -q quant "$m1"

# Crowd-scale smoke (PR 7): the sharded routing core at a CI-friendly node
# count must be deterministic across independent runs, and node churn must
# never trigger a second full structural build — the scale contract is that
# flips repair single shards.
go run ./cmd/zeiotbench -e e16 -nodes 3000 -seed 1 -json > "$m1"
go run ./cmd/zeiotbench -e e16 -nodes 3000 -seed 1 -json > "$m2"
diff -u "$m1" "$m2"
grep -q '"full_rebuilds": 1,' "$m1"
grep -q '"detections": ' "$m1"

# Observability smoke. No regression: running e1 with metrics collection
# enabled must still emit exactly the golden JSON (the metrics block stays
# out of -json without -metrics, and recording must not perturb results).
go run ./cmd/zeiotbench -e e1 -seed 1 -json -metrics-out "$m1" > "$smoke"
diff -u testdata/e1_seed1.golden.json "$smoke"
# Determinism: a second run's export matches the first on every metric that
# is not walltime_-prefixed.
go run ./cmd/zeiotbench -e e1 -seed 1 -json -metrics-out "$m2" > /dev/null
grep -v walltime_ "$m1" > "$smoke"
grep -v walltime_ "$m2" | diff -u "$smoke" -
# The export is non-trivial: training curves and cache stats are present.
grep -q zeiot_e1_optimal_train_loss "$m1"
grep -q zeiot_e1_wsn_route_cache_hits "$m1"

# Intermittent-runtime smoke (PR 8): e17 at seed 1 must emit exactly the
# checked-in golden JSON, serially and under parallel training.
go run ./cmd/zeiotbench -e e17 -seed 1 -json > "$smoke"
diff -u testdata/e17_seed1.golden.json "$smoke"
go run ./cmd/zeiotbench -e e17 -seed 1 -trainworkers 4 -json > "$smoke"
diff -u testdata/e17_seed1.golden.json "$smoke"

# Checkpoint kill/resume smoke: a simulated power failure must exit
# nonzero after writing the checkpoint, and the resumed run must emit the
# byte-identical golden of an uninterrupted run.
ck="$(mktemp -u)"
if go run ./cmd/zeiotbench -e e17 -seed 1 -checkpoint "$ck" -killafter 200 -json > /dev/null 2>&1; then
    echo "killed e17 run exited zero" >&2
    exit 1
fi
test -s "$ck"
go run ./cmd/zeiotbench -e e17 -seed 1 -checkpoint "$ck" -resume -json > "$smoke"
rm -f "$ck"
diff -u testdata/e17_seed1.golden.json "$smoke"

# Kill/resume flags without a checkpoint path must be an explicit error.
if go run ./cmd/zeiotbench -e e17 -killafter 5 > /dev/null 2>&1; then
    echo "zeiotbench accepted -killafter without -checkpoint" >&2
    exit 1
fi

# The -nodes ownership rule: comma lists scope the override to the
# experiments that own a free-scale deployment (e16 honours 3000, e7's
# paper-fixed link budget ignores its 0 entry and stays golden).
go run ./cmd/zeiotbench -e e16,e7 -nodes 3000,0 -samples 0.05,1 -seed 1 -json > /dev/null

# Cross-modal matrix smoke (PR 9): e18 at seed 1 must emit exactly the
# checked-in golden JSON, serially and under parallel training — the
# per-modality rng streams are derived by name, so any modality adapter
# drifting breaks this diff.
go run ./cmd/zeiotbench -e e18 -seed 1 -json > "$smoke"
diff -u testdata/e18_seed1.golden.json "$smoke"
go run ./cmd/zeiotbench -e e18 -seed 1 -trainworkers 4 -json > "$smoke"
diff -u testdata/e18_seed1.golden.json "$smoke"

# The -modalities filter changes which matrix rows appear, never the values
# of the rows that remain: the filtered run's gait row must match the full
# run's gait row byte for byte.
go run ./cmd/zeiotbench -e e18 -seed 1 -modalities gait,gait+vitals -json > "$m1"
grep '"acc_gait"' "$m1" > "$smoke"
grep '"acc_gait"' testdata/e18_seed1.golden.json | diff -u "$smoke" -
grep -q '"acc_gait_vitals"' "$m1"

# Unknown modality names must be an explicit error, not an empty matrix.
if go run ./cmd/zeiotbench -e e18 -modalities sonar > /dev/null 2>&1; then
    echo "zeiotbench accepted an unknown -modalities name" >&2
    exit 1
fi

# Checkpoint-broadcast regression (PR 10): the checkpoint flags drive one
# experiment's kill/resume flow, so a multi-experiment selection and a
# non-owning experiment must both be explicit errors, never a silent
# broadcast.
if go run ./cmd/zeiotbench -e e1,e17 -checkpoint /tmp/never-written.ck -resume > /dev/null 2>&1; then
    echo "zeiotbench accepted a multi-experiment -checkpoint run" >&2
    exit 1
fi
if go run ./cmd/zeiotbench -e e1 -checkpoint /tmp/never-written.ck -resume > /dev/null 2>&1; then
    echo "zeiotbench accepted -checkpoint for a non-owning experiment" >&2
    exit 1
fi

# Simulation-service smoke (PR 10): build the daemon (a real binary, so the
# SIGTERM below reaches it directly — `go run` does not forward signals),
# submit e1 through the HTTP path, and require the result byte-identical to
# the checked-in golden; a resubmission must be served from cache with the
# identical bytes; SIGTERM must drain cleanly.
zd="$(mktemp -d)"
go build -o "$zd/zeiotd" ./cmd/zeiotd
"$zd/zeiotd" -addr 127.0.0.1:0 -addrfile "$zd/addr" -workers 2 > "$zd/log" 2>&1 &
zd_pid=$!
trap 'kill "$zd_pid" 2>/dev/null || true; rm -f "$smoke" "$m1" "$m2"; rm -rf "$zd"' EXIT
for _ in $(seq 50); do test -s "$zd/addr" && break; sleep 0.1; done
zd_url="http://$(cat "$zd/addr")"
job="$(curl -sf -X POST "$zd_url/jobs" -d '{"experiment":"e1","config":{"Seed":1}}')"
jid="$(printf '%s' "$job" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')"
for _ in $(seq 600); do
    state="$(curl -sf "$zd_url/jobs/$jid" | sed -n 's/.*"state": "\([^"]*\)".*/\1/p')"
    case "$state" in done|failed|canceled) break ;; esac
    sleep 0.5
done
test "$state" = done
curl -sf "$zd_url/jobs/$jid/result" > "$smoke"
diff -u testdata/e1_seed1.golden.json "$smoke"
# Resubmit: must hit the cache (HTTP 200, cache_hit true) and serve the
# byte-identical result.
hit="$(curl -sf -X POST "$zd_url/jobs" -d '{"experiment":"e1","config":{"Seed":1}}')"
printf '%s' "$hit" | grep -q '"cache_hit": true'
hid="$(printf '%s' "$hit" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')"
curl -sf "$zd_url/jobs/$hid/result" > "$m1"
diff -u "$smoke" "$m1"
curl -sf "$zd_url/metrics" | grep -q '^zeiotd_cache_hits 1$'
# SIGTERM: the daemon drains (statuses flushed, summary printed) and exits 0.
kill -TERM "$zd_pid"
wait "$zd_pid"
grep -q 'zeiotd: drained: done=2 failed=0 canceled=0' "$zd/log"
rm -rf "$zd"
