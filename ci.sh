#!/bin/sh
# ci.sh — the gate every change must pass: build, vet, the full test suite
# under the race detector (the data-parallel training path makes the race
# run load-bearing, not optional), and an end-to-end reproducibility smoke
# run: e1 at seed 1 must emit exactly the checked-in golden JSON, so a
# determinism regression anywhere in the stack fails CI even if no unit
# test covers it.
set -eux

go build ./...
go vet ./...
go test -race ./...

smoke="$(mktemp)"
trap 'rm -f "$smoke"' EXIT
go run ./cmd/zeiotbench -e e1 -seed 1 -json > "$smoke"
diff -u testdata/e1_seed1.golden.json "$smoke"
