package zeiot_test

import (
	"context"
	"strings"
	"sync"
	"testing"

	"zeiot"
	"zeiot/internal/obs"
)

// TestSharedRegistryConcurrentRuns pins the fix for the config-gauge
// clobbering bug: two differently-configured runs sharing one Registry (the
// documented RunConfig.Clone behaviour — Clone shares the Recorder
// interface) used to overwrite each other's config_* gauges
// last-writer-wins, so an exported snapshot misdescribed the runs that
// produced it. With run-scoped prefixing, the snapshot must carry BOTH
// runs' config gauges — one set unprefixed, one under run2_ — with the two
// configured seeds appearing exactly once each. Run under -race (ci.sh
// does), this also proves the prefixing handshake itself is race-free.
func TestSharedRegistryConcurrentRuns(t *testing.T) {
	e, err := zeiot.FindExperiment("e7")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	base := &zeiot.RunConfig{Seed: 3, Recorder: reg}

	// Derive the second config the documented way: Clone shares the
	// recorder. Different seeds make the two runs distinguishable in the
	// snapshot.
	other := base.Clone()
	other.Seed = 4
	other.Repeats = 2

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i, cfg := range []*zeiot.RunConfig{base, other} {
		wg.Add(1)
		go func(i int, cfg *zeiot.RunConfig) {
			defer wg.Done()
			_, errs[i] = e.Run(context.Background(), cfg)
		}(i, cfg)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}

	snap := reg.Snapshot()
	first, ok1 := snap.Gauges["config_seed"]
	second, ok2 := snap.Gauges["run2_config_seed"]
	if !ok1 || !ok2 {
		t.Fatalf("snapshot missing a run's config gauges: gauges = %v", snap.Gauges)
	}
	// Which run claims which prefix is scheduling-dependent; both seeds must
	// survive, once each.
	got := map[float64]bool{first: true, second: true}
	if !got[3] || !got[4] {
		t.Errorf("config_seed gauges = {%v, %v}, want {3, 4} — a run's config was clobbered", first, second)
	}
	// The run2_ prefix nests inside the walltime_ prefix, so Deterministic
	// still strips the second run's stage timings.
	det := snap.Deterministic()
	for k := range det.Gauges {
		if strings.Contains(k, "stage_total_seconds") {
			t.Errorf("Deterministic kept wall-time gauge %q from a prefixed run", k)
		}
	}
	if _, ok := snap.Gauges[obs.WallTimePrefix+"run2_stage_total_seconds"]; !ok {
		t.Errorf("second run's stage timing not recorded under walltime_run2_: gauges = %v", snap.Gauges)
	}
}

// TestSharedRegistrySequentialRuns: sequential reuse of one registry is
// deterministic — the second run always records under run2_.
func TestSharedRegistrySequentialRuns(t *testing.T) {
	e, err := zeiot.FindExperiment("e7")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	cfg := &zeiot.RunConfig{Seed: 1, Recorder: reg}
	for i := 0; i < 2; i++ {
		if _, err := e.Run(context.Background(), cfg); err != nil {
			t.Fatal(err)
		}
	}
	snap := reg.Snapshot()
	if snap.Gauges["config_seed"] != 1 || snap.Gauges["run2_config_seed"] != 1 {
		t.Errorf("sequential reuse did not record both runs: gauges = %v", snap.Gauges)
	}
}
