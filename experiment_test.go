package zeiot

import (
	"context"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	exps := Experiments()
	if len(exps) != 18 {
		t.Fatalf("registry has %d experiments, want 18 (e1..e18)", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Fatalf("experiment %+v incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
	}
	for _, id := range []string{"e1", "e5", "e10"} {
		if !seen[id] {
			t.Fatalf("missing experiment %s", id)
		}
	}
}

func TestFindExperiment(t *testing.T) {
	e, err := FindExperiment("e7")
	if err != nil || e.ID != "e7" {
		t.Fatalf("FindExperiment(e7) = %v, %v", e.ID, err)
	}
	if _, err := FindExperiment("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

// TestResultRenderingRaggedRows is the regression test for the writeRow
// panic: rows wider than Header indexed widths[i] out of range. Wider rows
// now render their extra cells unpadded; narrower rows were always fine.
func TestResultRenderingRaggedRows(t *testing.T) {
	r := &Result{
		ID:     "ex",
		Title:  "ragged",
		Header: []string{"a", "bb", "ccc"},
		Rows: [][]string{
			{"1", "2", "3", "extra", "wider"}, // wider than Header
			{"4"},                             // narrower than Header
			{"5", "6", "7"},
		},
	}
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"extra", "wider", "4", "7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ragged rendering lost cell %q:\n%s", want, out)
		}
	}
}

func TestResultRendering(t *testing.T) {
	r := &Result{
		ID:         "ex",
		Title:      "demo",
		PaperClaim: "claim",
		Header:     []string{"a", "bb"},
		Rows:       [][]string{{"1", "2"}, {"333", "4"}},
		Summary:    map[string]float64{"z": 1, "a": 2},
		Notes:      "note text",
	}
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"EX: demo", "paper: claim", "333", "note: note text"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered result missing %q:\n%s", want, out)
		}
	}
	keys := r.SummaryKeys()
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "z" {
		t.Fatalf("SummaryKeys = %v", keys)
	}
}

// TestFastExperimentsRun executes the sub-second experiments end to end and
// checks their headline numbers land in the paper's shape. The heavy
// CNN-training experiments (e1, e2, e8) are exercised by the benchmark
// harness and TestHeavyExperiments below.
func TestFastExperimentsRun(t *testing.T) {
	checks := map[string]func(t *testing.T, r *Result){
		"e3": func(t *testing.T, r *Result) {
			if r.Summary["positioning_acc"] < 0.6 {
				t.Errorf("positioning accuracy %.3f", r.Summary["positioning_acc"])
			}
			if r.Summary["congestion_f1"] < 0.6 {
				t.Errorf("congestion F1 %.3f", r.Summary["congestion_f1"])
			}
		},
		"e4": func(t *testing.T, r *Result) {
			if r.Summary["exact_acc"] < 0.55 {
				t.Errorf("exact counting accuracy %.3f", r.Summary["exact_acc"])
			}
			if r.Summary["within2"] < 0.95 {
				t.Errorf("within-2 fraction %.3f", r.Summary["within2"])
			}
		},
		"e6": func(t *testing.T, r *Result) {
			if r.Summary["delivery_scheduled_load5"] < 0.95 {
				t.Errorf("scheduled delivery at low load %.3f", r.Summary["delivery_scheduled_load5"])
			}
			if r.Summary["delivery_aloha_load5"] > r.Summary["delivery_scheduled_load5"] {
				t.Error("aloha beat scheduled at low load")
			}
			if r.Summary["delivery_sched-no-dummy_load5"] > 0.5 {
				t.Errorf("no-dummy delivery at idle channel %.3f", r.Summary["delivery_sched-no-dummy_load5"])
			}
		},
		"e7": func(t *testing.T, r *Result) {
			ratio := r.Summary["wifi_over_backscatter"]
			if ratio < 1000 || ratio > 100000 {
				t.Errorf("energy ratio %v", ratio)
			}
			if r.Summary["usable_range_m"] < 8 {
				t.Errorf("usable range %v m", r.Summary["usable_range_m"])
			}
		},
		"e9": func(t *testing.T, r *Result) {
			if r.Summary["f1_200"] < 0.85 {
				t.Errorf("sociogram F1 %.3f", r.Summary["f1_200"])
			}
			if r.Summary["isolated_hits_200"] < r.Summary["isolated_total"] {
				t.Errorf("isolated found %v of %v", r.Summary["isolated_hits_200"], r.Summary["isolated_total"])
			}
		},
		"e10": func(t *testing.T, r *Result) {
			if r.Summary["direction_acc"] < 0.9 {
				t.Errorf("direction accuracy %.3f", r.Summary["direction_acc"])
			}
			if r.Summary["track_mean_err"] > 0.1 {
				t.Errorf("tracking error %.3f m", r.Summary["track_mean_err"])
			}
		},
		"e11": func(t *testing.T, r *Result) {
			if r.Summary["backscatter_speedup"] < 10 {
				t.Errorf("backscatter speedup only %.1fx", r.Summary["backscatter_speedup"])
			}
			if r.Summary["rate_backscatter"] <= r.Summary["rate_wifi"] {
				t.Error("backscatter not faster than wifi under energy budget")
			}
		},
		"e13": func(t *testing.T, r *Result) {
			if r.Summary["accuracy"] < 0.8 {
				t.Errorf("HAR accuracy %.3f", r.Summary["accuracy"])
			}
		},
		"e14": func(t *testing.T, r *Result) {
			if r.Summary["accuracy"] < 0.8 {
				t.Errorf("intrusion accuracy %.3f", r.Summary["accuracy"])
			}
			if r.Summary["recall_empty"] < 0.85 {
				t.Errorf("empty recall %.3f (false alarms)", r.Summary["recall_empty"])
			}
		},
		"e15": func(t *testing.T, r *Result) {
			if r.Summary["heart_err_bpm"] > 8 {
				t.Errorf("heart rate error %.1f bpm", r.Summary["heart_err_bpm"])
			}
			if r.Summary["breath_err_bpm"] > 3 {
				t.Errorf("breath rate error %.1f /min", r.Summary["breath_err_bpm"])
			}
		},
		"e12": func(t *testing.T, r *Result) {
			if r.Summary["motion_exact"] < 0.6 {
				t.Errorf("motion exact fraction %.2f", r.Summary["motion_exact"])
			}
			if r.Summary["crowd_level_acc"] < 0.7 {
				t.Errorf("crowd level accuracy %.2f", r.Summary["crowd_level_acc"])
			}
			if r.Summary["wordfi_acc"] < 0.8 {
				t.Errorf("word-fi accuracy %.2f", r.Summary["wordfi_acc"])
			}
			if v := r.Summary["flow_rel_err"]; v < -0.05 || v > 0.05 {
				t.Errorf("flow metering error %.3f", v)
			}
		},
	}
	for id, check := range checks {
		id, check := id, check
		t.Run(id, func(t *testing.T) {
			e, err := FindExperiment(id)
			if err != nil {
				t.Fatal(err)
			}
			r, err := e.Run(context.Background(), nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(r.Rows) == 0 || len(r.Summary) == 0 {
				t.Fatal("empty result")
			}
			if r.Timings[StageTotal] <= 0 {
				t.Error("run recorded no total wall time")
			}
			check(t, r)
		})
	}
}

// TestE16CrowdSmall runs the crowd-scale scenario at a CI-friendly node
// count and pins the PR 7 scale contract: exactly one full structural
// build, churn repaired per shard, deterministic summaries.
func TestE16CrowdSmall(t *testing.T) {
	cfg := &RunConfig{Seed: 1, Nodes: 2000}
	r, err := RunE16Crowd(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Summary["full_rebuilds"] != 1 {
		t.Errorf("full rebuilds %v, want exactly 1 (churn must repair shards, not the world)", r.Summary["full_rebuilds"])
	}
	if r.Summary["fails"] > 0 && r.Summary["shard_rebuilds"] == 0 {
		t.Error("churn happened but no shard table was ever rebuilt")
	}
	if r.Summary["detections"] == 0 {
		t.Error("no tag detection delivered")
	}
	if dr := r.Summary["detection_rate"]; dr <= 0 || dr > 1 {
		t.Errorf("detection rate %v outside (0, 1]", dr)
	}
	if r.Summary["mean_hops_to_sink"] <= 0 {
		t.Errorf("mean hops to sink %v", r.Summary["mean_hops_to_sink"])
	}
	r2, err := RunE16Crowd(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range r.Summary {
		if r2.Summary[k] != v {
			t.Fatalf("e16 summary %q differs across identical runs: %v vs %v", k, v, r2.Summary[k])
		}
	}
	if _, err := RunE16Crowd(context.Background(), &RunConfig{Seed: 1, Nodes: 10}); err == nil {
		t.Error("sub-floor node count accepted")
	}
}

// TestHeavyExperiments trains the MicroDeep CNNs; skipped with -short.
func TestHeavyExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("CNN training experiments skipped in -short mode")
	}
	t.Run("e1", func(t *testing.T) {
		r, err := RunE1FallCommCost(context.Background(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if r.Summary["acc_optimal"] < 0.85 {
			t.Errorf("optimal accuracy %.3f", r.Summary["acc_optimal"])
		}
		if r.Summary["max_cost_fea"] >= r.Summary["max_cost_opt"] {
			t.Errorf("feasible max cost %v not below optimal %v",
				r.Summary["max_cost_fea"], r.Summary["max_cost_opt"])
		}
	})
	t.Run("e2", func(t *testing.T) {
		r, err := RunE2Lounge(context.Background(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if r.Summary["acc_standard"] < 0.9 || r.Summary["acc_microdeep"] < 0.88 {
			t.Errorf("accuracies %.3f / %.3f", r.Summary["acc_standard"], r.Summary["acc_microdeep"])
		}
		if r.Summary["peak_ratio"] >= 1 {
			t.Errorf("peak ratio %.3f not below centralized", r.Summary["peak_ratio"])
		}
	})
	t.Run("e8", func(t *testing.T) {
		r, err := RunE8Resilience(context.Background(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if r.Summary["acc_reassigned_30"] <= r.Summary["acc_asis_30"] {
			t.Errorf("reassignment did not help at 30%%: %.3f vs %.3f",
				r.Summary["acc_reassigned_30"], r.Summary["acc_asis_30"])
		}
	})
}

// TestExperimentsDeterministic re-runs a cheap experiment and requires
// identical summaries.
func TestExperimentsDeterministic(t *testing.T) {
	for _, id := range []string{"e6", "e7", "e9"} {
		e, err := FindExperiment(id)
		if err != nil {
			t.Fatal(err)
		}
		cfg := &RunConfig{Seed: 42}
		a, err := e.Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := e.Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range a.Summary {
			if b.Summary[k] != v {
				t.Fatalf("%s: summary %q differs across identical runs: %v vs %v", id, k, v, b.Summary[k])
			}
		}
	}
}
