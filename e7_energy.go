package zeiot

import (
	"context"
	"fmt"

	"zeiot/internal/backscatter"
	"zeiot/internal/geom"
	"zeiot/internal/phy"
	"zeiot/internal/radio"
	"zeiot/internal/rng"
)

// RunE7LinkEnergy regenerates the paper's §I zero-energy claims: the
// energy-per-bit comparison behind "ambient backscatter reduces power
// consumption to about 1/10,000 (~10 µW)" and the BER/delivery-vs-distance
// behaviour of the product channel behind "transmit and receive data in
// several tens of meters".
func RunE7LinkEnergy(ctx context.Context, rc *RunConfig) (*Result, error) {
	h, err := beginRun(ctx, rc)
	if err != nil {
		return nil, err
	}
	seed := h.cfg.Seed
	res := &Result{
		ID:         "e7",
		Title:      "Zero-energy link: energy per bit and range",
		PaperClaim: "backscatter ~10 µW, ~1/10,000 of conventional radio; usable over tens of metres",
		Header:     []string{"row", "value", "detail"},
		Summary:    map[string]float64{},
	}
	radios := radio.StandardRadios()
	var wifiJ, backJ float64
	for _, r := range radios {
		j := r.JoulesPerBit()
		res.Rows = append(res.Rows, []string{
			"energy/bit " + r.Tech,
			fmt.Sprintf("%.3g J", j),
			fmt.Sprintf("%.3g W @ %.3g bps", r.PowerW, r.BitRate),
		})
		res.Summary["jpb_"+r.Tech] = j
		switch r.Tech {
		case "wifi":
			wifiJ = j
		case "backscatter":
			backJ = j
		}
	}
	ratio := wifiJ / backJ
	res.Summary["wifi_over_backscatter"] = ratio
	res.Rows = append(res.Rows, []string{"wifi / backscatter", fmt.Sprintf("%.0fx", ratio), "paper: ~10,000x"})

	// Product-channel range: a ZigBee-backscatter tag (DSSS spreading
	// gain 8, as in the paper's testbed) equidistant between a 30 dBm
	// EIRP carrier source and a full-duplex receiver, line-of-sight
	// propagation, empirical delivery over 400 draws per distance.
	link := radio.BackscatterLink{
		Model:       radio.LogDistance{RefLossDB: 40, RefDist: 1, Exponent: 2.0, ShadowSigmaDB: 3},
		TagLossDB:   8,
		SourceTxDBm: 30,
	}
	tag := backscatter.NewTag(0, geom.Point{}, link)
	noise := radio.ThermalNoiseDBm(250e3, 6)
	stream := rng.New(seed)
	maxUsable := 0.0
	draws := h.cfg.scaled(400)
	for _, d := range []float64{1, 2, 4, 8, 16, 32, 64} {
		delivered := 0
		for i := 0; i < draws; i++ {
			if tag.TransmitPacket(d, d, d, 256, noise, 80, stream).Delivered {
				delivered++
			}
		}
		rate := float64(delivered) / float64(draws)
		det := tag.TransmitPacket(d, d, d, 256, noise, 80, nil)
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("delivery @ %gm", d),
			pct(rate),
			fmt.Sprintf("BER %.2e", det.BER),
		})
		res.Summary[fmt.Sprintf("delivery_%gm", d)] = rate
		if rate >= 0.9 {
			maxUsable = d
		}
	}
	res.Summary["usable_range_m"] = maxUsable
	res.Rows = append(res.Rows, []string{"usable range (>=90%)", fmt.Sprintf("%.0f m", maxUsable), "paper: several tens of metres"})

	// The §IV.A rationale for ZigBee backscatter: DSSS spreading gain.
	// Measure symbol error rates at chip level, spread vs unspread, under
	// heavy noise and under a CW jammer.
	serTrials := h.cfg.scaled(4000)
	cb := phy.NewCodebook()
	noisy := phy.Channel{NoiseStd: 2.0}
	spreadSER, err := phy.SymbolErrorRate(cb, noisy, serTrials, rng.New(seed+1))
	if err != nil {
		return nil, err
	}
	rawSER, err := phy.UnspreadErrorRate(noisy, serTrials, rng.New(seed+2))
	if err != nil {
		return nil, err
	}
	jammed := phy.Channel{NoiseStd: 0.3, InterfererAmp: 2.0, InterfererHz: 153e3, ChipRateHz: 2e6}
	spreadJam, err := phy.SymbolErrorRate(cb, jammed, serTrials, rng.New(seed+3))
	if err != nil {
		return nil, err
	}
	rawJam, err := phy.UnspreadErrorRate(jammed, serTrials, rng.New(seed+4))
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows,
		[]string{"DSSS SER, chip SNR -6 dB", pct(spreadSER), fmt.Sprintf("unspread %s", pct(rawSER))},
		[]string{"DSSS SER under CW jammer", pct(spreadJam), fmt.Sprintf("unspread %s", pct(rawJam))},
	)
	res.Summary["dsss_ser_noise"] = spreadSER
	res.Summary["raw_ser_noise"] = rawSER
	res.Summary["dsss_ser_jam"] = spreadJam
	res.Summary["raw_ser_jam"] = rawJam
	h.mark(StageEval)
	res.Notes = "tag equidistant from carrier source and receiver; 256-bit packets, 80 dB carrier cancellation; DSSS = 32-chip/16-symbol correlation receiver"
	return h.finish(res), nil
}
