package zeiot

import (
	"context"
	"fmt"
	"math"

	"zeiot/internal/backscatter"
	"zeiot/internal/geom"
	"zeiot/internal/radio"
	"zeiot/internal/rng"
	"zeiot/internal/wsn"
)

// RunE16Crowd exercises the crowd-scale deployment the paper's vision
// statement sketches (§I, §III.C): a stadium-concourse field of 10⁵
// zero-energy relay nodes, thousands of mobile backscatter tags carried by
// people, ambient carrier base stations, and continuous node churn. Tag
// detections route hop-by-hop to a central sink over the sharded WSN core,
// so the experiment doubles as the scale/churn stress test for the PR 7
// hierarchical routing layer: its summary exposes the rebuild counters that
// prove a flip repairs one shard instead of recomputing the world.
//
// Scale knobs: RunConfig.Nodes overrides the 100,000-node default (the ci.sh
// smoke and the nodes/sec benchmark run smaller fields); SampleScale scales
// the simulated step count and tag population as usual.
func RunE16Crowd(ctx context.Context, rc *RunConfig) (*Result, error) {
	h, err := beginRun(ctx, rc)
	if err != nil {
		return nil, err
	}
	nodes := h.cfg.Nodes
	if nodes == 0 {
		nodes = 100_000
	}
	if nodes < 64 {
		return nil, fmt.Errorf("e16: Nodes = %d below the 64-node floor the crowd geometry needs", nodes)
	}

	// Relay field: a 2 m-pitch grid truncated to exactly `nodes` devices
	// (last row may be partial), radio range 3 m so diagonals link and a
	// failed node never partitions its neighbourhood. Always sharded —
	// E16 is the sharded core's scenario even below AutoShardThreshold.
	const spacing = 2.0
	rows := int(math.Sqrt(float64(nodes)))
	cols := (nodes + rows - 1) / rows
	positions := make([]geom.Point, nodes)
	for i := range positions {
		positions[i] = geom.Point{X: float64(i%cols) * spacing, Y: float64(i/cols) * spacing}
	}
	w := wsn.NewSharded(positions, 3.0, wsn.ShardOptions{})
	width := float64(cols-1) * spacing
	height := float64(rows-1) * spacing
	sink := (rows/2)*cols + cols/2

	steps := h.cfg.scaled(30)
	numTags := h.cfg.scaled(max(1, nodes/50))
	churnPerStep := max(1, nodes/10_000)

	// Mobile tags: random walk at pedestrian speed, reflecting at the
	// field boundary. Positions and velocities come from their own stream
	// so the channel draws below stay aligned across tag-count scalings.
	tagRng := rng.New(h.cfg.Seed).Split("e16-tags")
	churnRng := rng.New(h.cfg.Seed).Split("e16-churn")
	chanRng := rng.New(h.cfg.Seed).Split("e16-chan")
	type mobile struct{ pos, vel geom.Point }
	tags := make([]mobile, numTags)
	for i := range tags {
		speed := 1.0 + 0.6*tagRng.Float64()
		ang := 2 * math.Pi * tagRng.Float64()
		tags[i] = mobile{
			pos: geom.Point{X: tagRng.Float64() * width, Y: tagRng.Float64() * height},
			vel: geom.Point{X: speed * math.Cos(ang), Y: speed * math.Sin(ang)},
		}
	}

	// Ambient carrier base stations sit on a 16 m grid over the field; the
	// tag backscatters the nearest one's carrier. The link model is the
	// paper's ZigBee-backscatter testbed channel with per-attempt body
	// blockage: each human body crossing the short tag→receiver link adds
	// radio.BodyAttenuationDB of conversion loss, which is what keeps the
	// detection rate below 1 in a dense crowd.
	const bsPitch = 16.0
	link := radio.BackscatterLink{
		Model:       radio.LogDistance{RefLossDB: 40, RefDist: 1, Exponent: 2.4, ShadowSigmaDB: 3},
		TagLossDB:   6,
		SourceTxDBm: 36,
	}
	tagRadio := backscatter.NewTag(0, geom.Point{}, link)
	noise := radio.ThermalNoiseDBm(250e3, 6)
	const cancellationDB = 60.0
	const packetBits = 96

	// nearestLiveGrid returns the nearest live relay among the (up to) four
	// grid nodes around p, or -1 when churn opened a coverage hole there.
	nearestLiveGrid := func(p geom.Point) int {
		cx := int(p.X / spacing)
		cy := int(p.Y / spacing)
		best, bestD := -1, math.Inf(1)
		for dy := 0; dy <= 1; dy++ {
			for dx := 0; dx <= 1; dx++ {
				gx, gy := cx+dx, cy+dy
				if gx < 0 || gx >= cols || gy < 0 {
					continue
				}
				id := gy*cols + gx
				if id >= nodes || w.Node(id).Failed {
					continue
				}
				if d := geom.Dist(p, positions[id]); d < bestD {
					best, bestD = id, d
				}
			}
		}
		return best
	}
	nearestBS := func(p geom.Point) geom.Point {
		snap := func(v, limit float64) float64 {
			g := math.Round(v/bsPitch) * bsPitch
			return math.Min(math.Max(g, 0), limit)
		}
		return geom.Point{X: snap(p.X, width), Y: snap(p.Y, height)}
	}
	h.mark(StageDataset)

	var (
		attempts, detections, holes int
		routable, unroutable        int
		hopSum                      int
		reports, reportHops         int
		failsApplied, recovers      int
		energyJ                     float64
		failQueue                   []int
	)
	res := &Result{
		ID:         "e16",
		Title:      "Crowd-scale backscatter field: churn, detection, sharded routing",
		PaperClaim: "§I/§III.C vision — 10⁵-device deployments; measured here over the PR 7 hierarchical core",
		Header:     []string{"step", "live", "detections", "rate", "holes", "shard_rebuilds"},
		Summary:    map[string]float64{},
	}
	for step := 0; step < steps; step++ {
		if err := h.ctx.Err(); err != nil {
			return nil, err
		}
		// Node churn: fail churnPerStep random live relays (never the
		// sink); once the backlog exceeds four steps of churn, field
		// maintenance recovers the oldest failures FIFO.
		for c := 0; c < churnPerStep; c++ {
			for tries := 0; tries < 64; tries++ {
				id := churnRng.Intn(nodes)
				if id == sink || w.Node(id).Failed {
					continue
				}
				w.Fail(id)
				failQueue = append(failQueue, id)
				failsApplied++
				break
			}
		}
		if len(failQueue) > 4*churnPerStep {
			for c := 0; c < churnPerStep && len(failQueue) > 0; c++ {
				w.Recover(failQueue[0])
				failQueue = failQueue[1:]
				recovers++
			}
		}

		// Tag motion (1 s timestep) and detection attempts.
		stepDet, stepHoles := 0, 0
		for i := range tags {
			t := &tags[i]
			t.pos.X += t.vel.X
			t.pos.Y += t.vel.Y
			if t.pos.X < 0 {
				t.pos.X, t.vel.X = -t.pos.X, -t.vel.X
			} else if t.pos.X > width {
				t.pos.X, t.vel.X = 2*width-t.pos.X, -t.vel.X
			}
			if t.pos.Y < 0 {
				t.pos.Y, t.vel.Y = -t.pos.Y, -t.vel.Y
			} else if t.pos.Y > height {
				t.pos.Y, t.vel.Y = 2*height-t.pos.Y, -t.vel.Y
			}
			rx := nearestLiveGrid(t.pos)
			if rx < 0 {
				holes++
				stepHoles++
				continue
			}
			attempts++
			bs := nearestBS(t.pos)
			bodies := chanRng.Intn(4)
			tagRadio.Link.TagLossDB = link.TagLossDB + float64(bodies)*radio.BodyAttenuationDB
			pr := tagRadio.TransmitPacket(
				geom.Dist(bs, t.pos), geom.Dist(t.pos, positions[rx]), geom.Dist(bs, positions[rx]),
				packetBits, noise, cancellationDB, chanRng)
			energyJ += pr.EnergyJ
			if !pr.Delivered {
				continue
			}
			detections++
			stepDet++
			// Hops(sink, rx): the sink-anchored direction lets one cached
			// overlay state serve every detection this step.
			if hp := w.Hops(sink, rx); hp >= 0 {
				routable++
				hopSum += hp
				// Every 64th detection escalates to a full report routed
				// hop-by-hop to the sink (charges per-node counters).
				if detections%64 == 0 {
					sent, err := w.Send(rx, sink, 4)
					if err != nil {
						return nil, err
					}
					reports++
					reportHops += sent
				}
			} else {
				unroutable++
			}
		}
		_, shardRebuilds, _ := w.RebuildStats()
		live := len(w.Live())
		stepRate := float64(stepDet) / float64(numTags)
		res.Rows = append(res.Rows, []string{
			fi(step), fi(live), fi(stepDet), f3(stepRate), fi(stepHoles), fi(int(shardRebuilds)),
		})
		if rec := h.cfg.Recorder; rec != nil {
			rec.Observe("crowd_detections_per_step", float64(stepDet))
			rec.Observe("crowd_live_nodes", float64(live))
		}
	}
	h.mark(StageCharge)

	full, shard, overlay := w.RebuildStats()
	rHits, rMisses := w.RouteCacheStats()
	meanHops := 0.0
	if routable > 0 {
		meanHops = float64(hopSum) / float64(routable)
	}
	detRate := 0.0
	if attempts > 0 {
		detRate = float64(detections) / float64(attempts)
	}
	res.Summary["nodes"] = float64(nodes)
	res.Summary["shards"] = float64(w.NumShards())
	res.Summary["tags"] = float64(numTags)
	res.Summary["steps"] = float64(steps)
	res.Summary["fails"] = float64(failsApplied)
	res.Summary["recovers"] = float64(recovers)
	res.Summary["detect_attempts"] = float64(attempts)
	res.Summary["detections"] = float64(detections)
	res.Summary["detection_rate"] = detRate
	res.Summary["coverage_holes"] = float64(holes)
	res.Summary["mean_hops_to_sink"] = meanHops
	res.Summary["unroutable"] = float64(unroutable)
	res.Summary["reports_sent"] = float64(reports)
	res.Summary["report_hops"] = float64(reportHops)
	res.Summary["tag_energy_uj"] = energyJ * 1e6
	res.Summary["full_rebuilds"] = float64(full)
	res.Summary["shard_rebuilds"] = float64(shard)
	res.Summary["overlay_builds"] = float64(overlay)
	res.Summary["route_cache_hits"] = float64(rHits)
	res.Summary["route_cache_misses"] = float64(rMisses)
	if rec := h.cfg.Recorder; rec != nil {
		// Gauges only at this scale: per-node Tx/Rx series would emit 2N
		// points, so E16 skips observeWSN's series and publishes the
		// routing-cache and rebuild counters directly.
		rec.Gauge("crowd_nodes", float64(nodes))
		rec.Gauge("crowd_detection_rate", detRate)
		h.observeWSNCaches("wsn_", w)
	}
	res.Rows = append(res.Rows, []string{
		"total", fi(len(w.Live())), fi(detections), f3(detRate), fi(holes), fi(int(shard)),
	})
	res.Notes = fmt.Sprintf(
		"%d-node relay grid (2 m pitch, %d shards), %d mobile tags, %d fails/%d recovers; "+
			"ambient 16 m base-station grid, 36 dBm carriers, 60 dB cancellation, per-attempt body blockage; "+
			"full structural builds: %d (churn repairs shards, never the world)",
		nodes, w.NumShards(), numTags, failsApplied, recovers, full)
	return h.finish(res), nil
}
