package zeiot

import (
	"context"
	"fmt"
	"math"

	"zeiot/internal/rng"
	"zeiot/internal/vitals"
)

// RunE15Vitals implements use case (i) of §III.C — elderly monitoring —
// with the RF-ECG approach of ref [58]: heart and respiration rates
// recovered from the backscatter phase stream of a chest tag array. The
// paper cites RF-ECG qualitatively; we score rate errors over a range of
// subjects and compare the tag array against a single tag under a noisy
// reader.
func RunE15Vitals(ctx context.Context, rc *RunConfig) (*Result, error) {
	h, err := beginRun(ctx, rc)
	if err != nil {
		return nil, err
	}
	root := rng.New(h.cfg.Seed)
	cfg := vitals.DefaultConfig()

	subjects := []vitals.Subject{
		{HeartHz: 0.9, BreathHz: 0.2, HeartMM: 0.5, BreathMM: 4, Jitter: 0.03},
		{HeartHz: 1.1, BreathHz: 0.25, HeartMM: 0.5, BreathMM: 4, Jitter: 0.03},
		{HeartHz: 1.3, BreathHz: 0.3, HeartMM: 0.45, BreathMM: 3.5, Jitter: 0.04},
		{HeartHz: 1.7, BreathHz: 0.4, HeartMM: 0.55, BreathMM: 3, Jitter: 0.03},
	}
	res := &Result{
		ID:         "e15",
		Title:      "RF-ECG vital rates from a chest tag array",
		PaperClaim: "use case (i) via ref [58]: heartbeat sensing through a COTS RFID tag array",
		Header:     []string{"subject", "heart truth/est (bpm)", "breath truth/est (/min)", "errors"},
		Summary:    map[string]float64{},
	}
	heartErrSum, breathErrSum, ok := 0.0, 0.0, 0
	stream := root.Split("subjects")
	trials := h.cfg.scaled(5)
	for i, s := range subjects {
		if err := h.ctx.Err(); err != nil {
			return nil, err
		}
		hErr, bErr := 0.0, 0.0
		var lastH, lastB float64
		good := 0
		for trial := 0; trial < trials; trial++ {
			phases := vitals.Capture(cfg, s, stream.Split(fmt.Sprintf("cap-%d-%d", i, trial)))
			heart, breath, err := vitals.Estimate(cfg, phases)
			if err != nil {
				continue
			}
			hErr += math.Abs(heart - s.HeartHz)
			bErr += math.Abs(breath - s.BreathHz)
			lastH, lastB = heart, breath
			good++
		}
		if good == 0 {
			return nil, fmt.Errorf("zeiot: subject %d never estimated", i)
		}
		hErr /= float64(good)
		bErr /= float64(good)
		heartErrSum += hErr
		breathErrSum += bErr
		ok += good
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("subject %d", i+1),
			fmt.Sprintf("%.0f / %.0f", vitals.BPM(s.HeartHz), vitals.BPM(lastH)),
			fmt.Sprintf("%.0f / %.0f", vitals.BPM(s.BreathHz), vitals.BPM(lastB)),
			fmt.Sprintf("±%.1f bpm, ±%.1f /min", vitals.BPM(hErr), vitals.BPM(bErr)),
		})
	}
	meanHeartBPM := vitals.BPM(heartErrSum / float64(len(subjects)))
	meanBreathBPM := vitals.BPM(breathErrSum / float64(len(subjects)))
	res.Summary["heart_err_bpm"] = meanHeartBPM
	res.Summary["breath_err_bpm"] = meanBreathBPM
	res.Summary["windows_ok"] = float64(ok)
	res.Rows = append(res.Rows, []string{
		"mean error", fmt.Sprintf("±%.1f bpm", meanHeartBPM), fmt.Sprintf("±%.1f /min", meanBreathBPM), "",
	})
	res.Notes = fmt.Sprintf("%d-tag chest array, %g Hz interrogation, %g s windows, %d windows per subject",
		cfg.Tags, cfg.SampleHz, cfg.WindowSec, trials)
	h.mark(StageEval)
	return h.finish(res), nil
}
