package zeiot_test

import (
	"context"
	"fmt"
	"testing"

	"zeiot"
	"zeiot/internal/cnn"
	"zeiot/internal/dataset"
	"zeiot/internal/rng"
	"zeiot/internal/tensor"
)

// loungeSamples generates a small slice of the e2 lounge dataset for
// training-path tests.
func loungeSamples(t *testing.T, n int) []cnn.Sample {
	t.Helper()
	cfg := dataset.DefaultLoungeConfig()
	cfg.Seed = 7
	cfg.Samples = n
	samples, err := dataset.GenerateLounge(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return samples
}

// TestTrainEpochParallelBitIdentical trains the e2 CNN for two epochs with
// the sequential and the data-parallel path at the same seed and requires
// the final weights to be bit-identical at every worker count. The parallel
// path shards forward passes but reduces gradients in sample order, so any
// drift here is a real reordering bug, not float noise — hence tol 0.
func TestTrainEpochParallelBitIdentical(t *testing.T) {
	samples := loungeSamples(t, 96)
	const epochs, batch = 2, 16

	ref := benchNet2(1)
	ref.Fit(samples, epochs, batch, cnn.NewSGD(0.02, 0.9), rng.New(3).Split("fit"))

	for _, workers := range []int{2, 3, 5, 16} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			par := benchNet2(1)
			par.FitParallel(samples, epochs, batch, workers, cnn.NewSGD(0.02, 0.9), rng.New(3).Split("fit"))
			assertSameParams(t, ref, par)
		})
	}
}

// benchNet2 builds the e2 lounge topology from a seed (weights only; no
// input tensor, unlike benchNet).
func benchNet2(seed uint64) *cnn.Network {
	s := rng.New(seed)
	return cnn.NewNetwork([]int{1, 17, 25},
		cnn.NewConv2D(1, 4, 3, 3, 1, 1, s.Split("c")),
		cnn.NewReLU(),
		cnn.NewMaxPool2D(3, 3),
		cnn.NewFlatten(),
		cnn.NewDense(4*5*8, 16, s.Split("d1")),
		cnn.NewReLU(),
		cnn.NewDense(16, 2, s.Split("d2")),
	)
}

func assertSameParams(t *testing.T, a, b *cnn.Network) {
	t.Helper()
	la, lb := a.Layers(), b.Layers()
	if len(la) != len(lb) {
		t.Fatalf("layer count %d vs %d", len(la), len(lb))
	}
	for i := range la {
		pa, ok := la[i].(cnn.ParamLayer)
		if !ok {
			continue
		}
		pb := lb[i].(cnn.ParamLayer)
		ta, tb := pa.Params(), pb.Params()
		for j := range ta {
			if !tensor.Equal(ta[j], tb[j], 0) {
				t.Errorf("layer %d (%s) param %d differs from sequential result", i, la[i].Name(), j)
			}
		}
	}
}

// TestE8LossSweepDeterministic runs the e8 loss sweep twice at the same
// seed — once serially, once with four training workers — and requires the
// two Summary maps to match exactly. The sweep's delivery outcomes come
// from per-link rng substreams seeded only by (experiment seed, drop rate,
// link), and parallel training is bit-identical to serial, so the worker
// count must not move a single number.
func TestE8LossSweepDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("trains the lounge CNN twice")
	}
	lc := zeiot.DefaultLossConfig()
	lc.Enabled = true
	base := &zeiot.RunConfig{Seed: 1, Loss: lc}
	serial := base.Clone()
	serial.TrainWorkers = 1
	par := base.Clone()
	par.TrainWorkers = 4

	a, err := zeiot.RunE8Resilience(context.Background(), serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := zeiot.RunE8Resilience(context.Background(), par)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Summary) != len(b.Summary) {
		t.Fatalf("summary sizes differ: %d vs %d", len(a.Summary), len(b.Summary))
	}
	for k, va := range a.Summary {
		vb, ok := b.Summary[k]
		if !ok {
			t.Fatalf("summary key %q missing from the 4-worker run", k)
		}
		if va != vb {
			t.Errorf("summary[%q] differs: serial %v, 4 workers %v", k, va, vb)
		}
	}
	// The sweep actually ran and retries bought accuracy at some rate.
	for _, k := range []string{"acc_loss_30_retry", "acc_loss_30_noretry", "cost_loss_30_retry"} {
		if _, ok := a.Summary[k]; !ok {
			t.Fatalf("loss sweep did not produce summary key %q", k)
		}
	}
	if a.Summary["cost_loss_30_retry"] <= a.Summary["cost_loss_30_noretry"] {
		t.Error("retries at 30% loss did not increase the charged comm cost")
	}
}
