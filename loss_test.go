package zeiot

import (
	"testing"

	"zeiot/internal/rng"
)

// TestFaultSeedStreamsDistinct is the regression test for the weak fault
// seed mix: `seed ^ (Float64bits(rate) * golden)` was the identity at rate 0
// — the fault model drew from the experiment's own base stream — and a
// multiply-only mix generally. The finalized derivation must give every
// sweep rate a stream distinct from the others and from the base seed.
func TestFaultSeedStreamsDistinct(t *testing.T) {
	const seed = uint64(1)
	rates := []float64{0, 0.05, 0.1}

	seeds := map[uint64]float64{}
	for _, rate := range rates {
		s := faultSeed(seed, rate)
		if s == seed {
			t.Errorf("faultSeed(%d, %g) = %d collides with the experiment base seed", seed, rate, s)
		}
		if prev, dup := seeds[s]; dup {
			t.Errorf("faultSeed(%d, %g) collides with rate %g", seed, rate, prev)
		}
		seeds[s] = rate
	}

	// Stream-level check: the first draws of each derived stream must not
	// track the base stream or each other (a byte-for-byte prefix match
	// would mean correlated loss processes).
	draw := func(s uint64) [4]uint64 {
		st := rng.New(s)
		var out [4]uint64
		for i := range out {
			out[i] = st.Uint64()
		}
		return out
	}
	base := draw(seed)
	prefixes := map[[4]uint64]float64{}
	for _, rate := range rates {
		p := draw(faultSeed(seed, rate))
		if p == base {
			t.Errorf("rate %g: derived stream replays the base stream", rate)
		}
		if prev, dup := prefixes[p]; dup {
			t.Errorf("rate %g: derived stream replays rate %g's stream", rate, prev)
		}
		prefixes[p] = rate
	}
}

// TestFaultModelRateZeroIndependent pins the observable consequence of the
// old identity mix: at rate 0 the fault model's seed equaled the experiment
// seed, so its per-link substreams were exactly those the experiment itself
// would derive. After the fix the two derivations must disagree.
func TestFaultModelRateZeroIndependent(t *testing.T) {
	if faultSeed(7, 0) == 7 {
		t.Fatal("faultSeed at rate 0 is still the identity on the experiment seed")
	}
	// Different base seeds must still produce different fault streams.
	if faultSeed(1, 0.1) == faultSeed(2, 0.1) {
		t.Fatal("faultSeed ignores the experiment seed")
	}
}
