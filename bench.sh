#!/bin/sh
# bench.sh — run the benchmark suite and record the results as
# BENCH_pr<N>.json (the machine-diffable record shape cmd/benchjson emits;
# see BENCH_pr2.json for the convention). Perf regressions are caught by
# diffing the BENCH_pr<N>.json files across PRs.
#
# Usage: ./bench.sh <pr-number> [go-test-bench-regexp]
set -eu

if [ $# -lt 1 ]; then
  echo "usage: ./bench.sh <pr-number> [go-test-bench-regexp]" >&2
  exit 2
fi
pr="$1"
pattern="${2:-.}"
out="BENCH_pr${pr}.json"
commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"

go test -run '^$' -bench "$pattern" -benchmem . |
  go run ./cmd/benchjson -record "PR ${pr} benchmark suite (bench.sh)" -commit "$commit" > "$out"

echo "recorded in $out" >&2
