#!/bin/sh
# bench.sh — run the benchmark suite and append a dated record so perf
# regressions are caught by diffing BENCH_<date> files across changes.
#
# Usage: ./bench.sh [go-test-bench-regexp]   (default: all benchmarks)
set -eu

pattern="${1:-.}"
out="BENCH_$(date +%Y-%m-%d)"

{
  echo "# $(date -u +%Y-%m-%dT%H:%M:%SZ) commit $(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
  go test -run '^$' -bench "$pattern" -benchmem .
} | tee -a "$out"

echo "recorded in $out" >&2
