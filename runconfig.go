package zeiot

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"zeiot/internal/microdeep"
	"zeiot/internal/modality"
	"zeiot/internal/obs"
	"zeiot/internal/rng"
	"zeiot/internal/wsn"
)

// RunConfig carries every knob a single experiment run reads. Each run gets
// its own config — nothing is read from process globals — so concurrent runs
// with different worker counts, fault-injection settings, or sample scales
// are first-class: hand each goroutine its own RunConfig and the results are
// exactly what the same configs produce serially.
type RunConfig struct {
	// Seed is the root random seed; every rng stream the run touches is
	// derived from it by named splits.
	Seed uint64
	// TrainWorkers is the worker count handed to the data-parallel CNN
	// training paths; 0 selects runtime.NumCPU(). Parallel training is
	// bit-identical to sequential at every worker count, so this moves
	// wall time only, never results.
	TrainWorkers int
	// Loss enables lossy-link fault injection (see LossConfig). The zero
	// value disables it and every experiment runs the fault-free path.
	Loss LossConfig
	// SampleScale multiplies each experiment's default sample, trial, and
	// simulated-duration counts (rounded, floored at 1). 0 or 1 keeps the
	// defaults; 0.5 halves dataset sizes for quick sweeps. Scaled runs
	// are deterministic but not comparable to default-scale summaries.
	SampleScale float64
	// Repeats overrides the experiment's accuracy-averaging repeat count
	// (independent training seeds whose accuracies are averaged); 0 keeps
	// each experiment's own default (3 for e2, 1 for the single-run
	// experiments).
	Repeats int
	// BatchKernel routes CNN training through the batched im2col/GEMM
	// engine with blocks of this many samples per layer call. Results are
	// bit-identical to per-sample training at every block size (and compose
	// with TrainWorkers); only wall time moves. 0 or 1 keeps the per-sample
	// paths.
	BatchKernel int
	// Nodes overrides the node count of the experiments that own a
	// free-scale deployment (currently e16's crowd field, default 100,000).
	// 0 keeps each experiment's default; experiments with paper-fixed
	// topologies ignore it. Node counts at or above wsn.AutoShardThreshold
	// run on the sharded routing core (e16 always does).
	//
	// Ownership rule: an experiment honours Nodes only if its topology is
	// free-scale — sized by the scenario, not pinned by the paper. The
	// paper-fixed deployments (e2's 5×10 lounge, e7's corridor, e17's 8×8
	// harvest field, ...) silently ignore it by design, because resizing
	// them would break the claim the experiment reproduces. Use the
	// zeiotbench comma-list form (-e e16,e7 -nodes 3000,0) to scope an
	// override to the experiments that own one.
	Nodes int
	// Quantize additionally evaluates trained CNNs through int8 fixed-point
	// inference (per-tensor symmetric, calibrated activation scales, int32
	// accumulators) in the experiments that train CNNs (e1, e2, e13), adding
	// quantized accuracy rows to their summaries. Float results are
	// untouched: summaries gain rows, existing rows keep their bytes.
	Quantize bool
	// Harvest scales and shapes the intermittent-power runtime (E17's
	// harvest-driven training and brownout inference). The zero value keeps
	// E17's paper-scale defaults and leaves every other experiment untouched.
	Harvest HarvestConfig
	// Checkpoint drives E17's kill/resume flow: a simulated power failure
	// after N training batches, and resuming from the resulting checkpoint
	// file to a byte-identical result. The zero value disables both.
	Checkpoint CheckpointConfig
	// Modalities restricts the modality set of the experiments that sweep
	// the modality registry (currently e18's benchmark matrix). Empty keeps
	// every registered modality. Names must be registered in
	// internal/modality (e.g. gait, lounge, csi, rfid, har, intrusion,
	// vitals, motion, gait+vitals).
	//
	// Ownership rule: like Nodes, an experiment honours Modalities only if
	// it owns a registry sweep; the single-modality experiments (e1's gait,
	// e2's lounge, ...) ignore it by design because their modality is the
	// claim they reproduce. Per-modality rng streams are derived by name,
	// so filtering changes which rows appear, never the values of the rows
	// that remain.
	//
	// The list is a set: beginRun normalizes it to sorted, deduplicated
	// order before any experiment reads it, so two configs naming the same
	// modalities in different orders are the same run (and share a
	// ConfigKey).
	Modalities []string
	// Recorder receives the run's observability stream (training curves,
	// cache hit rates, per-node radio scalars, stage timings). Nil disables
	// observation entirely — the instrumented paths cost one nil check.
	// Recording never draws from any rng stream and never reorders
	// arithmetic, so results are byte-identical with and without it. Clone
	// shares the recorder (interface copy), so per-run variants derived
	// from one base config feed one registry unless reassigned.
	Recorder obs.Recorder
}

// Package default config backing the deprecated Set* shims. This is the
// only mutable package-level config state left, and nothing reads it except
// DefaultRunConfig and the shims themselves.
var (
	defaultMu           sync.Mutex
	defaultTrainWorkers int
	defaultLoss         LossConfig
)

// DefaultRunConfig returns the config that reproduces the historical
// process-global behaviour exactly: seed 1, NumCPU training workers, fault
// injection off, full sample counts, experiment-default repeats — plus
// whatever the deprecated SetTrainWorkers/SetLossConfig shims installed.
func DefaultRunConfig() *RunConfig {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	return &RunConfig{
		Seed:         1,
		TrainWorkers: defaultTrainWorkers,
		Loss:         defaultLoss,
		SampleScale:  1,
	}
}

// SetTrainWorkers overrides the training worker count in the package
// default config; n <= 0 restores the NumCPU default.
//
// Deprecated: SetTrainWorkers mutates the package default config that
// DefaultRunConfig snapshots. New code should set RunConfig.TrainWorkers on
// a per-run config instead, which also makes concurrent mixed-worker runs
// safe.
func SetTrainWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultMu.Lock()
	defaultTrainWorkers = n
	defaultMu.Unlock()
}

// TrainWorkers returns the package default config's effective training
// worker count.
//
// Deprecated: per-run worker counts live in RunConfig.TrainWorkers; this
// reads only the default installed by SetTrainWorkers.
func TrainWorkers() int {
	defaultMu.Lock()
	n := defaultTrainWorkers
	defaultMu.Unlock()
	if n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// SetLossConfig installs a fault-injection config in the package default
// config.
//
// Deprecated: SetLossConfig mutates the package default config that
// DefaultRunConfig snapshots. New code should set RunConfig.Loss on a
// per-run config instead, which also makes concurrent mixed-loss runs safe.
func SetLossConfig(c LossConfig) {
	defaultMu.Lock()
	defaultLoss = c
	defaultMu.Unlock()
}

// CurrentLossConfig returns the package default config's fault-injection
// settings.
//
// Deprecated: per-run fault injection lives in RunConfig.Loss; this reads
// only the default installed by SetLossConfig.
func CurrentLossConfig() LossConfig {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	return defaultLoss
}

// Validate reports the first invalid field. A zero-value RunConfig is
// valid (SampleScale 0 means 1). Loss options set while Loss.Enabled is
// false are an error rather than silently ignored — the historical CLI
// behaviour of dropping -lossretries/-lossburst when -loss was 0.
func (c *RunConfig) Validate() error {
	if c.TrainWorkers < 0 {
		return fmt.Errorf("zeiot: RunConfig.TrainWorkers %d is negative (0 selects NumCPU)", c.TrainWorkers)
	}
	if c.SampleScale < 0 {
		return fmt.Errorf("zeiot: RunConfig.SampleScale %g is negative (0 or 1 keeps the default sample counts)", c.SampleScale)
	}
	if c.Repeats < 0 {
		return fmt.Errorf("zeiot: RunConfig.Repeats %d is negative (0 keeps the experiment default)", c.Repeats)
	}
	if c.BatchKernel < 0 {
		return fmt.Errorf("zeiot: RunConfig.BatchKernel %d is negative (0 or 1 keeps per-sample training)", c.BatchKernel)
	}
	if c.Nodes < 0 {
		return fmt.Errorf("zeiot: RunConfig.Nodes %d is negative (0 keeps the experiment default)", c.Nodes)
	}
	if c.Harvest.PowerScale < 0 {
		return fmt.Errorf("zeiot: RunConfig.Harvest.PowerScale %g is negative (0 or 1 keeps the default harvest powers)", c.Harvest.PowerScale)
	}
	if !validHarvestProfile(c.Harvest.Profile) {
		return fmt.Errorf("zeiot: RunConfig.Harvest.Profile %q unknown (want rf, solar, thermal, or mixed)", c.Harvest.Profile)
	}
	if c.Checkpoint.KillAfterBatches < 0 {
		return fmt.Errorf("zeiot: RunConfig.Checkpoint.KillAfterBatches %d is negative (0 disables the simulated power failure)", c.Checkpoint.KillAfterBatches)
	}
	if c.Checkpoint.enabled() && c.Checkpoint.Path == "" {
		return fmt.Errorf("zeiot: RunConfig.Checkpoint requests kill/resume (killafter %d, resume %v) but Path is empty",
			c.Checkpoint.KillAfterBatches, c.Checkpoint.Resume)
	}
	if !c.Checkpoint.enabled() && c.Checkpoint.Path != "" {
		return fmt.Errorf("zeiot: RunConfig.Checkpoint.Path %q set but neither KillAfterBatches nor Resume is; set one or clear the path", c.Checkpoint.Path)
	}
	for _, m := range c.Modalities {
		if _, err := modality.New(m); err != nil {
			return fmt.Errorf("zeiot: RunConfig.Modalities: %w", err)
		}
	}
	l := c.Loss
	if l.DropProb < 0 || l.DropProb > 1 {
		return fmt.Errorf("zeiot: RunConfig.Loss.DropProb %g outside [0, 1]", l.DropProb)
	}
	if l.MaxRetries < 0 {
		return fmt.Errorf("zeiot: RunConfig.Loss.MaxRetries %d is negative (0 disables retries)", l.MaxRetries)
	}
	if !l.Enabled && (l.Burst || l.DropProb != 0 || l.MaxRetries != 0) {
		return fmt.Errorf("zeiot: loss options set (drop %g, burst %v, retries %d) but Loss.Enabled is false; enable fault injection or clear the options",
			l.DropProb, l.Burst, l.MaxRetries)
	}
	return nil
}

// Clone returns an independent copy, so a caller can derive per-run
// variants from a shared base config. The Modalities slice is copied, so a
// variant can append or reassign without mutating the base.
func (c *RunConfig) Clone() *RunConfig {
	out := *c
	out.Modalities = append([]string(nil), c.Modalities...)
	return &out
}

// workers resolves the effective training worker count.
func (c *RunConfig) workers() int {
	if c.TrainWorkers > 0 {
		return c.TrainWorkers
	}
	return runtime.NumCPU()
}

// scaled applies SampleScale to an experiment's default count, rounding and
// flooring at 1. At the default scale it returns base unchanged, so
// DefaultRunConfig reproduces the historical datasets exactly.
func (c *RunConfig) scaled(base int) int {
	n := int(math.Round(float64(base) * c.SampleScale))
	if n < 1 {
		n = 1
	}
	return n
}

// repeatsOr resolves the accuracy-averaging repeat count against the
// experiment's default.
func (c *RunConfig) repeatsOr(def int) int {
	if c.Repeats > 0 {
		return c.Repeats
	}
	return def
}

// harness is the per-invocation state threaded through one experiment run:
// the (normalized, privately owned) config, the context, and the per-stage
// wall-clock instrumentation that ends up in Result.Timings.
type harness struct {
	ctx     context.Context
	cfg     *RunConfig
	t0      time.Time
	last    time.Time
	timings Timings
}

// beginRun normalizes and validates the config and starts the stage clock.
// A nil cfg means DefaultRunConfig(); the caller's config is cloned, never
// mutated, so one RunConfig may back many concurrent runs.
func beginRun(ctx context.Context, cfg *RunConfig) (*harness, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg == nil {
		cfg = DefaultRunConfig()
	} else {
		cfg = cfg.Clone()
	}
	if cfg.SampleScale == 0 {
		cfg.SampleScale = 1
	}
	cfg.Modalities = canonicalModalities(cfg.Modalities)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if rec := cfg.Recorder; rec != nil {
		// Runs sharing one recorder — the documented Clone behaviour — used
		// to clobber each other's config_* gauges last-writer-wins and
		// interleave their series, so an exported snapshot misdescribed the
		// runs that produced it. Each run now claims a run number from the
		// recorder and, from the second run on, records under a "run<N>_"
		// prefix (kept inside WallTimePrefix so Deterministic still strips
		// wall-time entries). The first run keeps unprefixed names, so a
		// single-run registry exports exactly the bytes it always did.
		if seq, ok := rec.(obs.RunSequencer); ok {
			if n := seq.NextRun(); n > 1 {
				rec = obs.WithPrefix(rec, fmt.Sprintf("run%d_", n))
				cfg.Recorder = rec
			}
		}
	}
	if rec := cfg.Recorder; rec != nil {
		// The resolved config, as gauges, so an exported snapshot is
		// self-describing about the run that produced it. Raw field values
		// (not the NumCPU-resolved worker count) keep these deterministic.
		rec.Gauge("config_seed", float64(cfg.Seed))
		rec.Gauge("config_trainworkers", float64(cfg.TrainWorkers))
		rec.Gauge("config_sample_scale", cfg.SampleScale)
		rec.Gauge("config_repeats", float64(cfg.Repeats))
		// Only non-default knobs add gauges, so default-config exports stay
		// byte-identical to pre-PR6 snapshots.
		if cfg.BatchKernel > 1 {
			rec.Gauge("config_batch_kernel", float64(cfg.BatchKernel))
		}
		if cfg.Quantize {
			rec.Gauge("config_quantize", 1)
		}
		if cfg.Nodes > 0 {
			rec.Gauge("config_nodes", float64(cfg.Nodes))
		}
		if cfg.Loss.Enabled {
			rec.Gauge("config_loss_drop_prob", cfg.Loss.DropProb)
			rec.Gauge("config_loss_max_retries", float64(cfg.Loss.MaxRetries))
		}
		if s := cfg.Harvest.PowerScale; s != 0 && s != 1 {
			rec.Gauge("config_harvest_power_scale", s)
		}
		if k := cfg.Checkpoint.KillAfterBatches; k > 0 {
			rec.Gauge("config_checkpoint_kill_after", float64(k))
		}
		if len(cfg.Modalities) > 0 {
			rec.Gauge("config_modalities", float64(len(cfg.Modalities)))
		}
	}
	now := time.Now()
	return &harness{ctx: ctx, cfg: cfg, t0: now, last: now, timings: Timings{}}, nil
}

// mark closes the current stage: the wall time since the previous mark (or
// since beginRun) accumulates under the given stage name, so marks inside
// loops sum across iterations.
func (h *harness) mark(stage string) {
	now := time.Now()
	h.timings[stage] += now.Sub(h.last)
	h.last = now
}

// finish stamps the total wall time, attaches the timings to the result,
// and returns it, so experiments can `return h.finish(res), nil`.
//
// With a snapshotting Recorder configured, finish also mirrors the stage
// timings into walltime_-prefixed gauges (stripped by Snapshot.Deterministic,
// like Timings itself is stripped by diffing tools) and attaches the
// recorder's snapshot as Result.Metrics.
func (h *harness) finish(res *Result) *Result {
	h.timings[StageTotal] = time.Since(h.t0)
	res.Timings = h.timings
	if rec := h.cfg.Recorder; rec != nil {
		for _, stage := range h.timings.Stages() {
			rec.Gauge(obs.WallTimePrefix+"stage_"+stage+"_seconds", h.timings[stage].Seconds())
		}
		if s, ok := rec.(obs.Snapshotter); ok {
			res.Metrics = s.Snapshot()
		}
	}
	return res
}

// observeWSN publishes a network's radio and routing state under prefix:
// the per-node cumulative Tx/Rx charge scalars as two series (one point per
// node, in node order, so the export is deterministic) and the route-cache
// hit/miss totals as gauges. A no-op without a recorder.
func (h *harness) observeWSN(prefix string, w *wsn.Network) {
	rec := h.cfg.Recorder
	if rec == nil {
		return
	}
	for i := 0; i < w.NumNodes(); i++ {
		rec.Observe(prefix+"node_tx_scalars", float64(w.Node(i).TxScalars))
		rec.Observe(prefix+"node_rx_scalars", float64(w.Node(i).RxScalars))
	}
	h.observeWSNCaches(prefix, w)
}

// observeWSNCaches publishes a network's routing-cache and rebuild counters
// under prefix: route-memo hit/miss totals plus the PR 7 repair counters
// (full structural builds, per-shard table rebuilds, per-source overlay
// builds — the dense core reports its table rebuilds as full builds). E16
// uses this directly because at crowd scale the per-node series observeWSN
// also emits would dominate the export. A no-op without a recorder.
func (h *harness) observeWSNCaches(prefix string, w *wsn.Network) {
	rec := h.cfg.Recorder
	if rec == nil {
		return
	}
	hits, misses := w.RouteCacheStats()
	rec.Gauge(prefix+"route_cache_hits", float64(hits))
	rec.Gauge(prefix+"route_cache_misses", float64(misses))
	full, shard, overlay := w.RebuildStats()
	rec.Gauge(prefix+"full_rebuilds", float64(full))
	rec.Gauge(prefix+"shard_rebuilds", float64(shard))
	rec.Gauge(prefix+"overlay_builds", float64(overlay))
}

// observePlanCache publishes a unit graph's transfer-plan cache hit/miss
// totals under prefix. A no-op without a recorder.
func (h *harness) observePlanCache(prefix string, g *microdeep.Graph) {
	rec := h.cfg.Recorder
	if rec == nil {
		return
	}
	hits, misses := g.PlanCacheStats()
	rec.Gauge(prefix+"plan_cache_hits", float64(hits))
	rec.Gauge(prefix+"plan_cache_misses", float64(misses))
}

// averageOver is the shared repeats-averaging loop: it runs fn for every
// round r in [0, repeats) and returns the mean of its results, checking the
// context between rounds. Stream derivation is the caller's business (see
// trainAveraged for the training-seed convention).
func (h *harness) averageOver(repeats int, fn func(r int) (float64, error)) (float64, error) {
	if repeats < 1 {
		repeats = 1
	}
	sum := 0.0
	for r := 0; r < repeats; r++ {
		if err := h.ctx.Err(); err != nil {
			return 0, err
		}
		v, err := fn(r)
		if err != nil {
			return 0, err
		}
		sum += v
	}
	return sum / float64(repeats), nil
}

// trainAveraged is the shared accuracy-averaging training loop: it runs fn
// over `repeats` independent seed streams and returns the mean of the
// returned accuracies. With repeats <= 1 the stream is root.Split(label) —
// the historical single-run derivation — and with repeats > 1 round r draws
// root.Split(label + "-" + r), matching the historical e2 averaging loop,
// so DefaultRunConfig reproduces the pre-RunConfig rng streams exactly.
func (h *harness) trainAveraged(root *rng.Stream, label string, repeats int, fn func(s *rng.Stream) (float64, error)) (float64, error) {
	if repeats <= 1 {
		return fn(root.Split(label))
	}
	return h.averageOver(repeats, func(r int) (float64, error) {
		return fn(root.Split(fmt.Sprintf("%s-%d", label, r)))
	})
}
