package zeiot_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"zeiot"
)

// e17JSON runs e17 under cfg and returns the indented JSON the CLI would
// emit (Timings stripped), so tests can compare whole results byte for byte.
func e17JSON(t *testing.T, cfg *zeiot.RunConfig) []byte {
	t.Helper()
	r, err := zeiot.RunE17Intermittent(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.Timings = nil
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestE17Deterministic runs the harvest sweep serially and with four
// training workers at the same seed and requires byte-identical results:
// harvest traces are pure functions of (seed, node, tick), the capacitor
// walk is serial, and parallel training is bit-identical to sequential, so
// the worker count must not move a single number.
func TestE17Deterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the harvest training sweep twice")
	}
	serial := &zeiot.RunConfig{Seed: 1, TrainWorkers: 1}
	par := &zeiot.RunConfig{Seed: 1, TrainWorkers: 4}
	a, b := e17JSON(t, serial), e17JSON(t, par)
	if !bytes.Equal(a, b) {
		t.Error("e17 result differs between 1 and 4 training workers")
	}
}

// TestE17KillResumeBitIdentical is the pinned acceptance property of the
// intermittent runtime: a run killed by a simulated power failure — at a
// mid-point batch, and at a sweep-point boundary — must, after resuming
// from its checkpoint (under a different worker count, even), produce the
// byte-identical result of a run that was never interrupted.
func TestE17KillResumeBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the harvest training sweep several times")
	}
	want := e17JSON(t, &zeiot.RunConfig{Seed: 1, TrainWorkers: 2})

	// 40 kills mid-point 0; 150 lands exactly on point 0's last batch; 310
	// kills mid-point 2 after two finished points ride along in the file.
	for _, kill := range []int{40, 150, 310} {
		t.Run(fmt.Sprintf("killafter=%d", kill), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "e17.ck")
			killCfg := &zeiot.RunConfig{Seed: 1, TrainWorkers: 2,
				Checkpoint: zeiot.CheckpointConfig{Path: path, KillAfterBatches: kill}}
			_, err := zeiot.RunE17Intermittent(context.Background(), killCfg)
			if !errors.Is(err, zeiot.ErrKilled) {
				t.Fatalf("killed run returned %v, want ErrKilled", err)
			}
			resumeCfg := &zeiot.RunConfig{Seed: 1, TrainWorkers: 4,
				Checkpoint: zeiot.CheckpointConfig{Path: path, Resume: true}}
			got := e17JSON(t, resumeCfg)
			if !bytes.Equal(got, want) {
				t.Error("resumed run differs from the uninterrupted run")
			}
		})
	}
}

// TestE17ResumeRejectsForeignCheckpoint pins the config-echo check: a
// checkpoint written at one seed must not silently resume under another.
func TestE17ResumeRejectsForeignCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("trains part of the harvest sweep")
	}
	path := filepath.Join(t.TempDir(), "e17.ck")
	killCfg := &zeiot.RunConfig{Seed: 1,
		Checkpoint: zeiot.CheckpointConfig{Path: path, KillAfterBatches: 10}}
	if _, err := zeiot.RunE17Intermittent(context.Background(), killCfg); !errors.Is(err, zeiot.ErrKilled) {
		t.Fatalf("killed run returned %v, want ErrKilled", err)
	}
	resumeCfg := &zeiot.RunConfig{Seed: 2,
		Checkpoint: zeiot.CheckpointConfig{Path: path, Resume: true}}
	if _, err := zeiot.RunE17Intermittent(context.Background(), resumeCfg); err == nil {
		t.Error("resume at a different seed did not fail")
	}
}

// TestHarvestCheckpointConfigValidation covers the RunConfig rules the CLI
// relies on for the new knobs.
func TestHarvestCheckpointConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(c *zeiot.RunConfig)
		ok   bool
	}{
		{"default", func(c *zeiot.RunConfig) {}, true},
		{"scale+profile", func(c *zeiot.RunConfig) { c.Harvest = zeiot.HarvestConfig{PowerScale: 2, Profile: "solar"} }, true},
		{"mixed", func(c *zeiot.RunConfig) { c.Harvest.Profile = "mixed" }, true},
		{"negative scale", func(c *zeiot.RunConfig) { c.Harvest.PowerScale = -1 }, false},
		{"unknown profile", func(c *zeiot.RunConfig) { c.Harvest.Profile = "lunar" }, false},
		{"kill without path", func(c *zeiot.RunConfig) { c.Checkpoint.KillAfterBatches = 5 }, false},
		{"resume without path", func(c *zeiot.RunConfig) { c.Checkpoint.Resume = true }, false},
		{"path without mode", func(c *zeiot.RunConfig) { c.Checkpoint.Path = "x.ck" }, false},
		{"negative kill", func(c *zeiot.RunConfig) { c.Checkpoint = zeiot.CheckpointConfig{Path: "x.ck", KillAfterBatches: -1} }, false},
		{"kill with path", func(c *zeiot.RunConfig) { c.Checkpoint = zeiot.CheckpointConfig{Path: "x.ck", KillAfterBatches: 5} }, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := zeiot.DefaultRunConfig()
			tc.mut(cfg)
			err := cfg.Validate()
			if tc.ok && err != nil {
				t.Errorf("unexpected error: %v", err)
			}
			if !tc.ok && err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}
